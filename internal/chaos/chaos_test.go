package chaos_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/matrix"
)

// pipelineGraph builds a tiny two-stage graph: producer steps put items
// that consumer steps Get and fold into out. Both tag sets come from the
// environment, so dropping a producer tag starves its consumer (the
// consumer instance still exists and deadlocks) rather than silently
// erasing the whole pipeline stage. Returns the graph, the run closure,
// and the output matrix for verification.
func pipelineGraph(n int) (*cnc.Graph, func() error, *matrix.Dense) {
	g := cnc.NewGraph("chaos-unit", 4)
	out := matrix.New(1, n)
	items := cnc.NewItemCollection[int, float64](g, "it")
	ptags := cnc.NewTagCollection[int](g, "pt", false)
	ctags := cnc.NewTagCollection[int](g, "ct", false)
	prod := cnc.NewStepCollection(g, "p", func(i int) error {
		items.Put(i, float64(2*i))
		return nil
	})
	cons := cnc.NewStepCollection(g, "c", func(i int) error {
		out.Set(0, i, items.Get(i)+1)
		return nil
	})
	ptags.Prescribe(prod)
	ctags.Prescribe(cons)
	run := func() error {
		return g.Run(func() {
			for i := 0; i < n; i++ {
				ptags.Put(i)
				ctags.Put(i)
			}
		})
	}
	return g, run, out
}

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func verifyPipeline(t *testing.T, out *matrix.Dense, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if out.At(0, i) != float64(2*i+1) {
			t.Fatalf("out[%d] = %v, want %v", i, out.At(0, i), 2*i+1)
		}
	}
}

func TestStepErrorFailsRunWithoutRetry(t *testing.T) {
	g, run, _ := pipelineGraph(8)
	rng := testRand()
	f := &chaos.StepError{Prob: 1, Times: 1}
	p := f.Arm(g, rng)
	err := run()
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if p.Count() != 1 {
		t.Fatalf("injections = %d, want 1", p.Count())
	}
}

func TestStepErrorAbsorbedByRetry(t *testing.T) {
	const n = 8
	g, run, out := pipelineGraph(n)
	f := &chaos.StepError{Prob: 0.5, Times: 3}
	p := f.Arm(g, testRand())
	g.SetRetry(3)
	if err := run(); err != nil {
		t.Fatalf("run with retry budget: %v", err)
	}
	verifyPipeline(t, out, n)
	if p.Count() == 0 {
		t.Fatal("fault never fired")
	}
	if got := g.Stats().Retries; got != uint64(p.Count()) {
		t.Fatalf("Retries = %d, injections = %d", got, p.Count())
	}
}

func TestStepPanicContainedAndAbsorbed(t *testing.T) {
	// Without retry: the panic surfaces as a step failure naming the fault,
	// never as a crashed worker.
	g, run, _ := pipelineGraph(8)
	f := &chaos.StepPanic{Prob: 1, Times: 1}
	f.Arm(g, testRand())
	err := run()
	if err == nil || !strings.Contains(err.Error(), "chaos: injected fault") {
		t.Fatalf("err = %v, want contained panic naming the fault", err)
	}

	// With retry: fully absorbed.
	const n = 8
	g2, run2, out := pipelineGraph(n)
	p := (&chaos.StepPanic{Prob: 0.5, Times: 2}).Arm(g2, testRand())
	g2.SetRetry(2)
	if err := run2(); err != nil {
		t.Fatalf("run with retry budget: %v", err)
	}
	verifyPipeline(t, out, n)
	if p.Count() == 0 {
		t.Fatal("fault never fired")
	}
}

func TestDelayedPutIsHarmless(t *testing.T) {
	const n = 8
	g, run, out := pipelineGraph(n)
	p := (&chaos.DelayedPut{Prob: 1, Times: n}).Arm(g, testRand())
	if err := run(); err != nil {
		t.Fatalf("delayed puts must not fail the run: %v", err)
	}
	verifyPipeline(t, out, n)
	if p.Count() != n {
		t.Fatalf("injections = %d, want %d (every put delayed)", p.Count(), n)
	}
	if g.Stats().Retries != 0 {
		t.Fatal("delays must not consume retries")
	}
}

func TestDropTagStarvesConsumer(t *testing.T) {
	g, run, _ := pipelineGraph(4)
	// Drop exactly one tag put. The first put the hook sees is a producer
	// tag (consumer tags only exist once a producer ran), so its item is
	// never made and the consumer deadlocks on it.
	p := (&chaos.DropTag{Prob: 1, Times: 1}).Arm(g, testRand())
	err := run()
	var dl *cnc.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError from the starved consumer", err)
	}
	if p.Count() != 1 {
		t.Fatalf("injections = %d, want 1", p.Count())
	}
	dropped := p.Fired()[0] // "pt[i]"
	key := strings.TrimSuffix(strings.TrimPrefix(dropped, "pt["), "]")
	found := false
	for _, b := range dl.Blocked {
		if strings.Contains(b, "it["+key+"]") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped %s but Blocked %v does not name it[%s]", dropped, dl.Blocked, key)
	}
}

func TestFaultsBattery(t *testing.T) {
	fs := chaos.Faults(0.1, 2)
	if len(fs) != 4 {
		t.Fatalf("battery size = %d, want 4", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name()] = true
	}
	for _, want := range []string{"step-error", "step-panic", "delayed-put", "drop-tag"} {
		if !names[want] {
			t.Fatalf("battery missing %q (have %v)", want, names)
		}
	}
	if !fs[0].Recoverable() || fs[3].Recoverable() {
		t.Fatal("recoverability flags wrong: step-error must be recoverable, drop-tag must not")
	}
}
