package chaos_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dpflow/internal/bench"
	"dpflow/internal/chaos"
	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/exec"
)

// The multi-tenant isolation claim of the shared-executor refactor: a
// tenant whose graph is being actively sabotaged — the full fault matrix,
// injection probability 1 — shares the executor with a healthy tenant,
// and the healthy tenant's job must still complete, verify, and never
// trip its progress watchdog. Panics stay contained to the faulty graph,
// a DelayedPut's sleeping step only borrows a physical worker for a
// bounded time, and a dropped tag deadlocks only the graph that lost it.
func TestFaultMatrixSharedExecutorIsolation(t *testing.T) {
	ge, err := bench.Lookup(core.GE)
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(2)
	defer ex.Close()

	for _, fault := range chaos.Faults(1, 3) {
		t.Run(fault.Name(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			var wg sync.WaitGroup

			// Faulty tenant: fault armed at probability 1, no retry budget.
			// Any terminal outcome is legitimate — failure, deadlock, or a
			// survived run — as long as it terminates and stays contained.
			var faultyErr error
			var probe *chaos.Probe
			wg.Add(1)
			go func() {
				defer wg.Done()
				in, err := ge.NewInstance(64, 8, 7)
				if err != nil {
					faultyErr = err
					return
				}
				rng := rand.New(rand.NewSource(7))
				_, runErr := in.Run(ctx, core.NativeCnC, bench.RunOpts{
					Workers: 2,
					Tune: func(g *cnc.Graph) {
						g.WithExecutor(ex)
						probe = fault.Arm(g, rng)
					},
				})
				faultyErr = runErr
			}()

			// Healthy tenant: watchdogged; a stall means the faulty tenant
			// managed to starve it — the exact failure the per-lease claim
			// protocol exists to prevent.
			var healthyGraph *cnc.Graph
			var healthyMu sync.Mutex
			stalled := make(chan struct{}, 1)
			healthyCtx, cancelHealthy := context.WithCancel(ctx)
			defer cancelHealthy()
			wd := chaos.NewWatchdog(chaos.WatchdogConfig{
				Window: 5 * time.Second,
				Progress: func() uint64 {
					healthyMu.Lock()
					g := healthyGraph
					healthyMu.Unlock()
					if g == nil {
						return 0
					}
					st := g.Stats()
					return st.StepsDone + st.ItemsPut
				},
				OnStall: func([]string) {
					select {
					case stalled <- struct{}{}:
					default:
					}
					cancelHealthy()
				},
			})
			wd.Start()
			defer wd.Stop()

			in, err := ge.NewInstance(128, 8, 11)
			if err != nil {
				t.Fatal(err)
			}
			_, err = in.Run(healthyCtx, core.NativeCnC, bench.RunOpts{
				Workers: 2,
				Tune: func(g *cnc.Graph) {
					g.WithExecutor(ex)
					healthyMu.Lock()
					healthyGraph = g
					healthyMu.Unlock()
				},
			})
			if err == nil {
				err = in.Verify()
			}
			select {
			case <-stalled:
				t.Fatalf("healthy tenant stalled while %s sabotaged its neighbour", fault.Name())
			default:
			}
			if err != nil {
				t.Fatalf("healthy tenant failed under neighbour's %s: %v", fault.Name(), err)
			}

			wg.Wait()
			if ctx.Err() != nil {
				t.Fatalf("faulty tenant did not terminate under %s (hard deadline)", fault.Name())
			}
			if probe == nil || probe.Count() == 0 {
				t.Fatalf("%s never fired — isolation untested", fault.Name())
			}
			// Outcome of the faulty run is free, but DelayedPut never fails
			// anything, so there a clean run is part of the contract.
			if fault.Name() == "delayed-put" && faultyErr != nil {
				t.Fatalf("delayed-put must only jitter, got %v", faultyErr)
			}
			t.Logf("faulty tenant: injections=%d err=%v", probe.Count(), faultyErr)
		})
	}

	// The executor survived the whole matrix: a fresh healthy run still
	// completes on it.
	in, err := ge.NewInstance(64, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(context.Background(), core.NativeCnC, bench.RunOpts{
		Workers: 2,
		Tune:    func(g *cnc.Graph) { g.WithExecutor(ex) },
	}); err != nil {
		t.Fatalf("executor unusable after fault matrix: %v", err)
	}
	if err := in.Verify(); err != nil {
		t.Fatal(err)
	}
}
