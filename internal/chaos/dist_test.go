package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubTransport implements TransportControl over nothing: it records kills
// and replays synthetic frames through whatever hook is installed.
type stubTransport struct {
	mu     sync.Mutex
	shards int
	hook   func(dir Dir, shard int, msgType string, size int) Verdict
	killed []int
}

func (s *stubTransport) Shards() int { return s.shards }

func (s *stubTransport) SetFrameHook(fn func(dir Dir, shard int, msgType string, size int) Verdict) {
	s.mu.Lock()
	s.hook = fn
	s.mu.Unlock()
}

func (s *stubTransport) KillWorker(shard int) error {
	s.mu.Lock()
	s.killed = append(s.killed, shard)
	s.mu.Unlock()
	return nil
}

// frame pushes one synthetic frame through the installed hook.
func (s *stubTransport) frame(dir Dir, shard int, msgType string, size int) Verdict {
	s.mu.Lock()
	fn := s.hook
	s.mu.Unlock()
	if fn == nil {
		return Verdict{}
	}
	return fn(dir, shard, msgType, size)
}

func (s *stubTransport) kills() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.killed...)
}

func driveFrames(t *testing.T, tc *stubTransport, n int) (dropped, delayed, reset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v := tc.frame(Dir(i%2), i%tc.shards, "put", 64)
		if v.Drop {
			dropped++
		}
		if v.Delay > 0 {
			delayed++
		}
		if v.Reset {
			reset++
		}
	}
	return
}

func TestMessageDropFiresWithinBudget(t *testing.T) {
	tc := &stubTransport{shards: 2}
	f := &MessageDrop{Prob: 1.0, Times: 3}
	p := f.ArmDist(tc, rand.New(rand.NewSource(1)))
	dropped, _, _ := driveFrames(t, tc, 10)
	if dropped != 3 {
		t.Fatalf("dropped %d frames, want exactly the budget 3", dropped)
	}
	if p.Count() != 3 {
		t.Fatalf("probe recorded %d, want 3", p.Count())
	}
}

func TestMessageDelayVerdict(t *testing.T) {
	tc := &stubTransport{shards: 2}
	f := &MessageDelay{Prob: 1.0, Times: 1, Delay: 7 * time.Millisecond}
	p := f.ArmDist(tc, rand.New(rand.NewSource(1)))
	v := tc.frame(DirSend, 0, "get", 32)
	if v.Delay != 7*time.Millisecond {
		t.Fatalf("verdict delay = %v, want 7ms", v.Delay)
	}
	if _, delayed, _ := driveFrames(t, tc, 5); delayed != 0 {
		t.Fatal("delay fired past its budget")
	}
	if p.Count() != 1 {
		t.Fatalf("probe recorded %d, want 1", p.Count())
	}
}

func TestConnResetVerdict(t *testing.T) {
	tc := &stubTransport{shards: 3}
	f := &ConnReset{Prob: 1.0, Times: 2}
	p := f.ArmDist(tc, rand.New(rand.NewSource(1)))
	_, _, reset := driveFrames(t, tc, 8)
	if reset != 2 {
		t.Fatalf("reset %d frames, want 2", reset)
	}
	if p.Count() != 2 {
		t.Fatalf("probe recorded %d, want 2", p.Count())
	}
}

func TestProcessKillWarmupAndTarget(t *testing.T) {
	tc := &stubTransport{shards: 4}
	f := &ProcessKill{Prob: 1.0, Times: 1, After: 3}
	p := f.ArmDist(tc, rand.New(rand.NewSource(1)))
	// First three frames are warmup: no kill may fire.
	for i := 0; i < 3; i++ {
		tc.frame(DirSend, i%4, "put", 64)
	}
	if p.Count() != 0 {
		t.Fatalf("kill fired during warmup (%d)", p.Count())
	}
	tc.frame(DirRecv, 2, "ack", 16)
	deadline := time.Now().Add(2 * time.Second)
	for len(tc.kills()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond) // the kill races the frame on purpose
	}
	kills := tc.kills()
	if len(kills) != 1 || kills[0] != 2 {
		t.Fatalf("kills = %v, want exactly shard 2 (the frame's own shard)", kills)
	}
	if p.Count() != 1 {
		t.Fatalf("probe recorded %d, want 1", p.Count())
	}
	// Budget exhausted: further frames must not kill.
	driveFrames(t, tc, 10)
	time.Sleep(5 * time.Millisecond)
	if len(tc.kills()) != 1 {
		t.Fatalf("kills past budget: %v", tc.kills())
	}
}

func TestDistFaultsBattery(t *testing.T) {
	fs := DistFaults(0.5, 2)
	if len(fs) != 4 {
		t.Fatalf("battery has %d faults, want 4", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name()] = true
	}
	for _, want := range []string{"process-kill", "message-drop", "message-delay", "conn-reset"} {
		if !names[want] {
			t.Fatalf("battery missing %q (got %v)", want, names)
		}
	}
}

// TestWatchdogDefersStallWhileRemoteBusy: with progress frozen but
// RemoteBusy nonzero, the watchdog must keep deferring (counting each
// deferral) instead of declaring a stall; once the remote wait clears and
// progress stays frozen a full window, the stall fires.
func TestWatchdogDefersStallWhileRemoteBusy(t *testing.T) {
	var busy atomic.Int64
	busy.Store(1)
	stall := make(chan struct{})
	w := NewWatchdog(WatchdogConfig{
		Progress:   func() uint64 { return 42 }, // frozen from the start
		RemoteBusy: busy.Load,
		Window:     20 * time.Millisecond,
		Poll:       2 * time.Millisecond,
		OnStall:    func([]string) { close(stall) },
	})
	w.Start()
	defer w.Stop()

	// Remote-busy phase: several windows elapse with no stall.
	select {
	case <-stall:
		t.Fatal("stall declared while RemoteBusy > 0")
	case <-time.After(100 * time.Millisecond):
	}
	if d := w.Stats().RemoteWaitDeferrals; d == 0 {
		t.Fatal("no RemoteWaitDeferrals counted during the remote-busy phase")
	}

	// Remote wait clears; progress is still frozen, so now it is a stall.
	busy.Store(0)
	select {
	case <-stall:
	case <-time.After(2 * time.Second):
		t.Fatal("stall never declared after RemoteBusy cleared")
	}
	if stalled, _ := w.Stalled(); !stalled {
		t.Fatal("Stalled() false after OnStall ran")
	}
}
