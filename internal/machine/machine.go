// Package machine describes the execution platforms of the study. The
// paper's testbed machines — a 64-core AMD EPYC 7501 and a 192-core Intel
// Xeon Platinum 8160 ("Skylake") — are modelled here with the cache
// geometry and bandwidth figures from §IV-A, plus calibrated per-task
// runtime-overhead constants for the four benchmark variants.
//
// This container has a single physical core, so the paper's scaling
// phenomena cannot be reproduced by wall-clock measurement; these machine
// models drive the discrete-event scheduler in internal/simsched instead
// (see DESIGN.md, substitution table).
package machine

import "runtime"

// CacheLevel describes one level of the data-cache hierarchy.
type CacheLevel struct {
	SizeBytes int     // capacity available to one core's working set
	LineBytes int     // cache line size
	Ways      int     // associativity (used by the cache simulator)
	MissCost  float64 // seconds to fetch a line from the next level down
}

// Overheads holds the per-event runtime costs (seconds) used by the
// simulator's variant overhead model. The values are calibrated, not
// measured: they are chosen so the simulated curves land in the paper's
// reported magnitude range, and the *relations* between them encode the
// qualitative facts the paper states (CnC steps cost more to schedule than
// OpenMP tasks; failed gets re-execute steps; manual pre-declaration adds
// per-instance registration work that dominates when the task count
// explodes).
type Overheads struct {
	SpawnFJ     float64 // spawn + deque push/pop + steal amortised, per OpenMP task
	JoinFJ      float64 // taskwait bookkeeping, per join
	TagPut      float64 // tag put + step instantiation, per CnC step
	StepSched   float64 // scheduler round trip for a ready CnC step
	AbortRetry  float64 // one failed blocking Get: abort, park, requeue
	DepCheck    float64 // one pre-declared dependency check (tuner variants)
	Instantiate float64 // manual variant: one up-front instance registration

	// Global dispatch serialisation (seconds between successive task
	// dispatches, machine-wide). GNU OpenMP's tasking runtime keeps a
	// single task queue under one lock, so at scale its dispatch rate is
	// bounded; TBB (underneath Intel CnC) uses distributed deques and
	// serialises far less; the manual CnC variant contends on the global
	// item/tag hash maps while the whole graph is being instantiated.
	FJSerial     float64
	CnCSerial    float64
	ManualSerial float64
}

// Machine is a platform model.
type Machine struct {
	Name    string
	Sockets int
	Cores   int // total physical cores = simulated workers

	L1, L2, L3 CacheLevel
	// MemMissCost is the cost of an L3 miss (seconds per line), derived
	// from the per-socket memory bandwidth.
	MemMissCost float64

	// FlopTime is the effective time per DP-table update operation in the
	// tuned base-case kernel (seconds), folding in vectorisation and ILP.
	FlopTime float64

	// PrefetchFactor scales memory cost for executions with depth-first
	// locality (the fork-join LIFO schedule): the hardware prefetcher and
	// cache reuse hide part of the traffic. The paper observed the inverse
	// effect on CnC: coarse-grained data-flow irregularity defeats the
	// prefetcher (§IV-B), so data-flow variants pay the full cost.
	PrefetchFactor float64

	Overheads Overheads
}

const line = 64

// defaultOverheads are shared calibrated constants; per-machine factors are
// applied on top (more sockets -> more expensive scheduler traffic).
func defaultOverheads(socketFactor float64) Overheads {
	return Overheads{
		SpawnFJ:      0.6e-6 * socketFactor,
		JoinFJ:       0.3e-6 * socketFactor,
		TagPut:       1.8e-6 * socketFactor,
		StepSched:    1.4e-6 * socketFactor,
		AbortRetry:   2.5e-6 * socketFactor,
		DepCheck:     0.5e-6 * socketFactor,
		Instantiate:  1.1e-6 * socketFactor,
		FJSerial:     0.5e-6 * socketFactor,
		CnCSerial:    0.06e-6 * socketFactor,
		ManualSerial: 0.25e-6 * socketFactor,
	}
}

// EPYC64 models the paper's AMD EPYC 7501 node: 2 sockets × 32 cores,
// 32K L1 / 512K L2 / 8M L3 (per-CCX, ~2M per-core share used for fit
// decisions is folded into SizeBytes), 170 GiB/s per-socket bandwidth.
func EPYC64() *Machine {
	return &Machine{
		Name:    "EPYC-64",
		Sockets: 2,
		Cores:   64,
		L1:      CacheLevel{SizeBytes: 32 << 10, LineBytes: line, Ways: 8, MissCost: 4e-9},
		L2:      CacheLevel{SizeBytes: 512 << 10, LineBytes: line, Ways: 8, MissCost: 12e-9},
		L3:      CacheLevel{SizeBytes: 8 << 20, LineBytes: line, Ways: 16, MissCost: 35e-9},
		// 170 GiB/s per socket shared by 32 cores: ~64B / (170GiB/32) s.
		MemMissCost:    float64(line) / (170.0 * (1 << 30) / 32.0),
		FlopTime:       1.4e-9,
		PrefetchFactor: 0.45,
		Overheads:      defaultOverheads(1),
	}
}

// SKYLAKE192 models the paper's 8-socket Intel Xeon Platinum 8160 node:
// 8 × 24 cores, 32K L1 / 1M L2 / 33M L3 per socket, 119 GiB/s.
// Following the paper's own analysis (§IV-B, Table I discussion), the L3
// working-set fit is judged against a 32 MB share.
func SKYLAKE192() *Machine {
	return &Machine{
		Name:    "SKYLAKE-192",
		Sockets: 8,
		Cores:   192,
		L1:      CacheLevel{SizeBytes: 32 << 10, LineBytes: line, Ways: 8, MissCost: 4e-9},
		L2:      CacheLevel{SizeBytes: 1 << 20, LineBytes: line, Ways: 16, MissCost: 14e-9},
		// L3 and memory costs fold in the cross-socket NUMA penalty of the
		// 8-socket topology (the paper's node has 8 NUMA zones and a lower
		// clock than the EPYC, which is why its absolute times are not 3×
		// better despite 3× the cores).
		L3:             CacheLevel{SizeBytes: 32 << 20, LineBytes: line, Ways: 11, MissCost: 70e-9},
		MemMissCost:    2 * float64(line) / (119.0 * (1 << 30) / 24.0),
		FlopTime:       2.3e-9,
		PrefetchFactor: 0.45,
		// Eight sockets make every cross-core scheduling event dearer.
		Overheads: defaultOverheads(2.2),
	}
}

// Host returns a model of the machine the code is actually running on —
// core count from the Go runtime, cache geometry a generic laptop-class
// guess. It exists so the real-execution benchmarks can be placed on the
// same axes as the simulated ones.
func Host() *Machine {
	return &Machine{
		Name:    "HOST",
		Sockets: 1,
		Cores:   runtime.NumCPU(),
		L1:      CacheLevel{SizeBytes: 32 << 10, LineBytes: line, Ways: 8, MissCost: 4e-9},
		L2:      CacheLevel{SizeBytes: 512 << 10, LineBytes: line, Ways: 8, MissCost: 12e-9},
		L3:      CacheLevel{SizeBytes: 8 << 20, LineBytes: line, Ways: 16, MissCost: 35e-9},
		// Single-threaded laptop-class access is latency-bound, not
		// bandwidth-bound: ~80ns per line.
		MemMissCost:    80e-9,
		FlopTime:       1.5e-9,
		PrefetchFactor: 0.45,
		Overheads:      defaultOverheads(1),
	}
}

// Levels returns the cache hierarchy top-down.
func (m *Machine) Levels() []CacheLevel { return []CacheLevel{m.L1, m.L2, m.L3} }

// FitsInLevel reports whether a working set of the given bytes fits in the
// cache level.
func (c CacheLevel) Fits(bytes int) bool { return bytes <= c.SizeBytes }
