package machine

import "testing"

func TestPaperGeometries(t *testing.T) {
	e := EPYC64()
	if e.Cores != 64 || e.Sockets != 2 {
		t.Fatalf("EPYC: %d cores, %d sockets", e.Cores, e.Sockets)
	}
	if e.L2.SizeBytes != 512<<10 {
		t.Fatalf("EPYC L2 = %d", e.L2.SizeBytes)
	}
	s := SKYLAKE192()
	if s.Cores != 192 || s.Sockets != 8 {
		t.Fatalf("SKX: %d cores, %d sockets", s.Cores, s.Sockets)
	}
	if s.L2.SizeBytes != 1<<20 || s.L3.SizeBytes != 32<<20 {
		t.Fatalf("SKX caches: L2=%d L3=%d", s.L2.SizeBytes, s.L3.SizeBytes)
	}
}

func TestLevelsTopDown(t *testing.T) {
	m := EPYC64()
	ls := m.Levels()
	if len(ls) != 3 {
		t.Fatalf("%d levels", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].SizeBytes <= ls[i-1].SizeBytes {
			t.Fatalf("level %d (%d B) not larger than level %d (%d B)",
				i, ls[i].SizeBytes, i-1, ls[i-1].SizeBytes)
		}
		if ls[i].MissCost <= ls[i-1].MissCost {
			t.Fatalf("miss costs not increasing down the hierarchy")
		}
	}
}

func TestFits(t *testing.T) {
	l := CacheLevel{SizeBytes: 1024}
	if !l.Fits(1024) || l.Fits(1025) {
		t.Fatal("Fits boundary wrong")
	}
}

func TestOverheadRelations(t *testing.T) {
	for _, m := range []*Machine{EPYC64(), SKYLAKE192(), Host()} {
		o := m.Overheads
		if o.SpawnFJ <= 0 || o.TagPut <= 0 || o.AbortRetry <= 0 {
			t.Fatalf("%s: zero overheads %+v", m.Name, o)
		}
		// The qualitative facts the model encodes: CnC steps cost more to
		// create than OpenMP tasks; a failed get costs more than a tag put;
		// the fork-join central queue serialises harder than TBB's deques.
		if o.TagPut <= o.SpawnFJ {
			t.Fatalf("%s: TagPut %v <= SpawnFJ %v", m.Name, o.TagPut, o.SpawnFJ)
		}
		if o.AbortRetry <= o.TagPut {
			t.Fatalf("%s: AbortRetry %v <= TagPut %v", m.Name, o.AbortRetry, o.TagPut)
		}
		if o.FJSerial <= o.CnCSerial {
			t.Fatalf("%s: FJSerial %v <= CnCSerial %v", m.Name, o.FJSerial, o.CnCSerial)
		}
	}
}

func TestSocketFactorScalesOverheads(t *testing.T) {
	e, s := EPYC64(), SKYLAKE192()
	if s.Overheads.TagPut <= e.Overheads.TagPut {
		t.Fatal("8-socket scheduling should cost more than 2-socket")
	}
}

func TestHostReflectsRuntime(t *testing.T) {
	h := Host()
	if h.Cores < 1 || h.Name != "HOST" {
		t.Fatalf("Host: %+v", h)
	}
}

func TestPrefetchFactorRange(t *testing.T) {
	for _, m := range []*Machine{EPYC64(), SKYLAKE192(), Host()} {
		if m.PrefetchFactor <= 0 || m.PrefetchFactor >= 1 {
			t.Fatalf("%s: PrefetchFactor %v outside (0,1)", m.Name, m.PrefetchFactor)
		}
		if m.MemMissCost <= m.L3.MissCost/10 {
			t.Fatalf("%s: memory miss cost implausibly low", m.Name)
		}
	}
}
