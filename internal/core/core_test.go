package core

import "testing"

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{
		SerialLoop:     "Serial",
		SerialRDP:      "Serial_RDP",
		OMPTasking:     "OpenMP",
		NativeCnC:      "CnC",
		TunerCnC:       "CnC_tuner",
		ManualCnC:      "CnC_manual",
		NonBlockingCnC: "CnC_nonblocking",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
	if Variant(99).String() != "Variant(99)" {
		t.Errorf("unknown variant label: %q", Variant(99).String())
	}
}

func TestParallelVariantsOrder(t *testing.T) {
	// The paper's legend order: CnC, CnC_tuner, CnC_manual, OpenMP.
	want := []Variant{NativeCnC, TunerCnC, ManualCnC, OMPTasking}
	if len(ParallelVariants) != len(want) {
		t.Fatalf("%d parallel variants", len(ParallelVariants))
	}
	for i, v := range want {
		if ParallelVariants[i] != v {
			t.Fatalf("ParallelVariants[%d] = %v, want %v", i, ParallelVariants[i], v)
		}
	}
}

func TestModelOf(t *testing.T) {
	if ModelOf(OMPTasking) != ForkJoin {
		t.Fatal("OMPTasking should be fork-join")
	}
	for _, v := range []Variant{NativeCnC, TunerCnC, ManualCnC, NonBlockingCnC} {
		if ModelOf(v) != DataFlow {
			t.Fatalf("%v should be data-flow", v)
		}
	}
	if ForkJoin.String() != "fork-join" || DataFlow.String() != "data-flow" {
		t.Fatal("model names wrong")
	}
}

func TestBenchIDStrings(t *testing.T) {
	if GE.String() != "GE" || SW.String() != "SW" || FW.String() != "FW-APSP" {
		t.Fatal("bench names wrong")
	}
	if BenchID(9).String() != "BenchID(9)" {
		t.Fatal("unknown bench label wrong")
	}
}
