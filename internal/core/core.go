// Package core defines the shared vocabulary of the study: the execution
// models under comparison (fork-join vs data-flow), the benchmark variants
// the paper evaluates (Native-CnC, Tuner-CnC, Manual-CnC, OMP-Tasking plus
// the serial references), and the result records the harness and the
// simulator exchange.
//
// The paper's contribution is not a single algorithm but a controlled
// comparison; this package is the layer that makes the comparison uniform
// across the three DP benchmarks (GE, SW, FW-APSP), the two runtimes
// (internal/forkjoin, internal/cnc), the DAG builders (internal/dag) and the
// discrete-event machine simulator (internal/simsched).
package core

import "fmt"

// Variant identifies one of the implementations the paper compares
// (§IV-B lists the four parallel versions; the serial ones are references).
type Variant int

const (
	// SerialLoop is the loop-based serial implementation (Listing 2).
	SerialLoop Variant = iota
	// SerialRDP is the 2-way recursive divide-and-conquer algorithm run
	// serially: same operation order as the parallel versions, no runtime.
	SerialRDP
	// OMPTasking is the fork-join R-DP program (the paper's OpenMP
	// implementation, Listing 3), run on the forkjoin pool.
	OMPTasking
	// NativeCnC is the base CnC program without scheduling hints:
	// speculative steps with abort-and-requeue blocking gets.
	NativeCnC
	// TunerCnC is the CnC program with the pre-scheduling tuner (§III-D).
	TunerCnC
	// ManualCnC is the manually pre-scheduled CnC program: the full base
	// task graph is instantiated up front with pre-declared dependencies.
	ManualCnC
	// NonBlockingCnC is the §IV-B ablation: base steps poll their inputs
	// with non-blocking gets and re-put their own tag when data is missing.
	// The paper found it profitable only for small block sizes; it is not
	// part of the figures' series.
	NonBlockingCnC
)

// ParallelVariants lists the four variants of the paper's figures, in the
// paper's legend order: CnC, CnC_tuner, CnC_manual, OpenMP.
var ParallelVariants = []Variant{NativeCnC, TunerCnC, ManualCnC, OMPTasking}

// String returns the paper's series label for the variant.
func (v Variant) String() string {
	switch v {
	case SerialLoop:
		return "Serial"
	case SerialRDP:
		return "Serial_RDP"
	case OMPTasking:
		return "OpenMP"
	case NativeCnC:
		return "CnC"
	case TunerCnC:
		return "CnC_tuner"
	case ManualCnC:
		return "CnC_manual"
	case NonBlockingCnC:
		return "CnC_nonblocking"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Model is the execution model a variant belongs to.
type Model int

const (
	// ForkJoin: joins synchronise all spawned children (artificial
	// dependencies included).
	ForkJoin Model = iota
	// DataFlow: tasks fire when their true tile-level data dependencies
	// are satisfied.
	DataFlow
)

// String names the model.
func (m Model) String() string {
	if m == ForkJoin {
		return "fork-join"
	}
	return "data-flow"
}

// ModelOf returns the execution model of a parallel variant.
func ModelOf(v Variant) Model {
	if v == OMPTasking {
		return ForkJoin
	}
	return DataFlow
}

// IsCnC reports whether the variant runs on the CnC graph runtime (and so
// accepts graph-level machinery like tune hooks and discipline checkers).
func (v Variant) IsCnC() bool {
	switch v {
	case NativeCnC, TunerCnC, ManualCnC, NonBlockingCnC:
		return true
	}
	return false
}

// BenchID identifies one of the study's DP benchmarks. The semantics of
// each id — shapes, kernels, closed forms, runners — live with the
// benchmark itself in internal/bench; this enum is only the shared name.
type BenchID int

const (
	// GE is Gaussian Elimination without pivoting.
	GE BenchID = iota
	// SW is Smith-Waterman local alignment.
	SW
	// FW is Floyd-Warshall all-pairs shortest path.
	FW
	// CH is tiled Cholesky factorisation — the CnC case study of the
	// paper's §V related work, onboarded as the fourth benchmark.
	CH
)

// String returns the benchmark's short name.
func (b BenchID) String() string {
	switch b {
	case GE:
		return "GE"
	case SW:
		return "SW"
	case FW:
		return "FW-APSP"
	case CH:
		return "CH"
	default:
		return fmt.Sprintf("BenchID(%d)", int(b))
	}
}

// Point is one measured or simulated datum of a figure: an execution time
// for a (benchmark, machine, variant, n, base) combination.
type Point struct {
	Bench   BenchID
	Machine string
	Variant string  // series label ("CnC", "OpenMP", "Estimated", ...)
	N       int     // problem size (matrix side / sequence length)
	Base    int     // recursive base-case size
	Seconds float64 // execution time
}

// Series is a named curve of a figure: time as a function of base size.
type Series struct {
	Label  string
	Points []Point
}
