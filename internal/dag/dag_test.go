package dag

import (
	"testing"

	"dpflow/internal/gep"
)

func TestGEPDataflowIDCoordsRoundTrip(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		g := NewGEPDataflow(6, shape)
		seen := make(map[int]bool)
		for k := 0; k < 6; k++ {
			lo := 0
			if shape == gep.Triangular {
				lo = k
			}
			for i := lo; i < 6; i++ {
				for j := lo; j < 6; j++ {
					id := g.ID(i, j, k)
					if seen[id] {
						t.Fatalf("%v: duplicate id %d", shape, id)
					}
					seen[id] = true
					ri, rj, rk := g.Coords(id)
					if ri != i || rj != j || rk != k {
						t.Fatalf("%v: roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)",
							shape, i, j, k, id, ri, rj, rk)
					}
				}
			}
		}
		if len(seen) != g.Len() {
			t.Fatalf("%v: enumerated %d ids, Len = %d", shape, len(seen), g.Len())
		}
	}
}

func TestGEPDataflowTaskCensus(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		for _, tiles := range []int{1, 2, 4, 7} {
			g := NewGEPDataflow(tiles, shape)
			s := Analyze(g)
			wa, wb, wc, wd := gep.TaskCount(tiles, shape)
			if s.ByKind[KindA] != wa || s.ByKind[KindB] != wb || s.ByKind[KindC] != wc || s.ByKind[KindD] != wd {
				t.Fatalf("%v tiles=%d: census %v, want A=%d B=%d C=%d D=%d",
					shape, tiles, s.ByKind, wa, wb, wc, wd)
			}
			if s.ByKind[KindJoin] != 0 {
				t.Fatalf("dataflow graph has join nodes")
			}
		}
	}
}

func TestGEPDataflowAcyclicAndConsistent(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		g := NewGEPDataflow(5, shape)
		if err := CheckAcyclic(g); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		// InDeg must equal the number of enumerated predecessors, and the
		// pred/succ relations must be mutual.
		for id := 0; id < g.Len(); id++ {
			preds := 0
			g.EachPred(id, func(p int) {
				preds++
				found := false
				g.EachSucc(p, func(s int) {
					if s == id {
						found = true
					}
				})
				if !found {
					t.Fatalf("%v: %d is pred of %d but not vice versa", shape, p, id)
				}
			})
			if preds != g.InDeg(id) {
				t.Fatalf("%v: id %d InDeg=%d but %d preds enumerated", shape, id, g.InDeg(id), preds)
			}
		}
	}
}

func TestGEPDataflowSingleSource(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		g := NewGEPDataflow(4, shape)
		s := Analyze(g)
		if s.SourceCnt != 1 {
			t.Fatalf("%v: %d sources, want 1 (A(0,0,0))", shape, s.SourceCnt)
		}
		if g.Kind(g.ID(0, 0, 0)) != KindA || g.InDeg(g.ID(0, 0, 0)) != 0 {
			t.Fatalf("%v: A(0,0,0) is not the source", shape)
		}
	}
}

func TestSWDataflow(t *testing.T) {
	g := NewSWDataflow(4)
	if g.Len() != 16 {
		t.Fatalf("Len = %d", g.Len())
	}
	if err := CheckAcyclic(g); err != nil {
		t.Fatal(err)
	}
	if g.InDeg(g.ID(0, 0)) != 0 || g.InDeg(g.ID(0, 2)) != 1 || g.InDeg(g.ID(2, 2)) != 3 {
		t.Fatal("SW in-degrees wrong")
	}
	succs := 0
	g.EachSucc(g.ID(3, 3), func(int) { succs++ })
	if succs != 0 {
		t.Fatal("sink has successors")
	}
}

func TestForkJoinTaskCensusMatchesDataflow(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		for _, tiles := range []int{1, 2, 4, 8} {
			fj := Analyze(NewGEPForkJoin(tiles, shape))
			df := Analyze(NewGEPDataflow(tiles, shape))
			for k := KindA; k <= KindD; k++ {
				if fj.ByKind[k] != df.ByKind[k] {
					t.Fatalf("%v tiles=%d kind %v: forkjoin %d tasks, dataflow %d",
						shape, tiles, k, fj.ByKind[k], df.ByKind[k])
				}
			}
		}
	}
	fj := Analyze(NewSWForkJoin(8))
	if fj.ByKind[KindSW] != 64 {
		t.Fatalf("SW forkjoin base tasks = %d, want 64", fj.ByKind[KindSW])
	}
}

func TestForkJoinAcyclic(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		if err := CheckAcyclic(NewGEPForkJoin(8, shape)); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
	}
	if err := CheckAcyclic(NewSWForkJoin(16)); err != nil {
		t.Fatal(err)
	}
}

// The fork-join ordering must contain every data-flow FLOW dependency: if
// task u produces a value task v consumes, u must be an ancestor of v in
// the fork-join graph. This is what "joins only ADD artificial
// dependencies" means, and it is why the fork-join execution is correct.
//
// The Cube shape's write-after-read anti-dependencies are deliberately
// excluded: fork-join resolves those hazards in the OPPOSITE direction
// (the diagonal block is fully re-eliminated before the pivot-row/column
// functions read it), which is also race-free and — by min-plus
// monotonicity — value-correct for FW. The two models therefore order the
// WAR pairs differently while agreeing on the final matrix (asserted
// bit-exactly in internal/fw's tests).
func TestForkJoinDominatesDataflow(t *testing.T) {
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		tiles := 4
		df := NewGEPDataflow(tiles, shape)
		fj := NewGEPForkJoin(tiles, shape)

		// Map (i,j,k) -> fork-join node id by walking fj's leaves in
		// recursion order and df tasks in recursion order: instead, match
		// by kind + order of phases is fragile; use coordinates recomputed
		// from a parallel symbolic run. Simpler: leaves of fj are emitted
		// in the exact order the serial recursion visits base cases, so
		// replay the serial recursion to collect coordinates in order.
		coords := gepSerialOrder(tiles, shape)
		leafIDs := []int{}
		for id := 0; id < fj.Len(); id++ {
			if fj.Kind(id) != KindJoin {
				leafIDs = append(leafIDs, id)
			}
		}
		if len(coords) != len(leafIDs) {
			t.Fatalf("%v: %d coords vs %d leaves", shape, len(coords), len(leafIDs))
		}
		fjNode := make(map[[3]int]int)
		for idx, c := range coords {
			fjNode[c] = leafIDs[idx]
		}

		// Reachability closure over the fork-join DAG (bitset per node).
		n := fj.Len()
		reach := make([][]bool, n)
		order := topoOrder(t, fj)
		for i := n - 1; i >= 0; i-- {
			id := order[i]
			reach[id] = make([]bool, n)
			fj.EachSucc(id, func(s int) {
				reach[id][s] = true
				for x := 0; x < n; x++ {
					if reach[s][x] {
						reach[id][x] = true
					}
				}
			})
		}

		// Enumerate the flow dependencies directly (prev / A / B / C); this
		// excludes the Cube anti-dependency edges EachSucc also reports.
		for id := 0; id < df.Len(); id++ {
			vi, vj, vk := df.Coords(id)
			v := fjNode[[3]int{vi, vj, vk}]
			var preds [][3]int
			if vk > 0 {
				preds = append(preds, [3]int{vi, vj, vk - 1})
			}
			switch gep.Classify(vi, vj, vk) {
			case gep.FuncB, gep.FuncC:
				preds = append(preds, [3]int{vk, vk, vk})
			case gep.FuncD:
				preds = append(preds, [3]int{vk, vk, vk}, [3]int{vk, vj, vk}, [3]int{vi, vk, vk})
			}
			for _, pc := range preds {
				u := fjNode[pc]
				if u == v {
					continue
				}
				if !reach[u][v] {
					t.Fatalf("%v: flow edge (%d,%d,%d)->(%d,%d,%d) not ordered by fork-join",
						shape, pc[0], pc[1], pc[2], vi, vj, vk)
				}
			}
		}
	}
}

// gepSerialOrder replays the serial recursion and returns base-case
// coordinates in visit order (matching fjBuilder's leaf emission order).
func gepSerialOrder(tiles int, shape gep.Shape) [][3]int {
	var out [][3]int
	var fa, fb, fc, fd func(args [3]int, s int)
	leaf := func(i, j, k int) { out = append(out, [3]int{i, j, k}) }
	fa = func(a [3]int, s int) {
		d := a[0]
		if s == 1 {
			leaf(d, d, d)
			return
		}
		h := s / 2
		fa([3]int{d}, h)
		fb([3]int{d, d + h, d}, h)
		fc([3]int{d + h, d, d}, h)
		fd([3]int{d + h, d + h, d}, h)
		fa([3]int{d + h}, h)
		if shape == gep.Cube {
			fb([3]int{d + h, d, d + h}, h)
			fc([3]int{d, d + h, d + h}, h)
			fd([3]int{d, d, d + h}, h)
		}
	}
	fb = func(a [3]int, s int) {
		i0, j0, k0 := a[0], a[1], a[2]
		if s == 1 {
			leaf(i0, j0, k0)
			return
		}
		h := s / 2
		fb([3]int{i0, j0, k0}, h)
		fb([3]int{i0, j0 + h, k0}, h)
		fd([3]int{i0 + h, j0, k0}, h)
		fd([3]int{i0 + h, j0 + h, k0}, h)
		fb([3]int{i0 + h, j0, k0 + h}, h)
		fb([3]int{i0 + h, j0 + h, k0 + h}, h)
		if shape == gep.Cube {
			fd([3]int{i0, j0, k0 + h}, h)
			fd([3]int{i0, j0 + h, k0 + h}, h)
		}
	}
	fc = func(a [3]int, s int) {
		i0, j0, k0 := a[0], a[1], a[2]
		if s == 1 {
			leaf(i0, j0, k0)
			return
		}
		h := s / 2
		fc([3]int{i0, j0, k0}, h)
		fc([3]int{i0 + h, j0, k0}, h)
		fd([3]int{i0, j0 + h, k0}, h)
		fd([3]int{i0 + h, j0 + h, k0}, h)
		fc([3]int{i0, j0 + h, k0 + h}, h)
		fc([3]int{i0 + h, j0 + h, k0 + h}, h)
		if shape == gep.Cube {
			fd([3]int{i0, j0, k0 + h}, h)
			fd([3]int{i0 + h, j0, k0 + h}, h)
		}
	}
	fd = func(a [3]int, s int) {
		i0, j0, k0 := a[0], a[1], a[2]
		if s == 1 {
			leaf(i0, j0, k0)
			return
		}
		h := s / 2
		for kk := 0; kk <= h; kk += h {
			fd([3]int{i0, j0, k0 + kk}, h)
			fd([3]int{i0, j0 + h, k0 + kk}, h)
			fd([3]int{i0 + h, j0, k0 + kk}, h)
			fd([3]int{i0 + h, j0 + h, k0 + kk}, h)
		}
	}
	fa([3]int{0}, tiles)
	return out
}

func topoOrder(t *testing.T, g Graph) []int {
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.InDeg(i)
	}
	var order []int
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		g.EachSucc(id, func(s int) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		})
	}
	if len(order) != n {
		t.Fatalf("cyclic graph in topoOrder")
	}
	return order
}

func TestInvalidConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { NewGEPDataflow(0, gep.Triangular) },
		func() { NewSWDataflow(0) },
		func() { NewGEPForkJoin(3, gep.Triangular) },
		func() { NewSWForkJoin(6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTriangularIDPanicsOutsideTaskSpace(t *testing.T) {
	g := NewGEPDataflow(4, gep.Triangular)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for i < k")
		}
	}()
	g.ID(0, 3, 2)
}

func TestKindString(t *testing.T) {
	if KindA.String() != "A" || KindJoin.String() != "join" || KindSW.String() != "SW" {
		t.Fatal("kind names wrong")
	}
}

// The r-way fork-join DAG keeps the same base-task census and shrinks the
// span monotonically toward the data-flow span as r grows.
func TestRWayForkJoinCensusAndSpan(t *testing.T) {
	const tiles = 16
	for _, shape := range []gep.Shape{gep.Triangular, gep.Cube} {
		df := Analyze(NewGEPDataflow(tiles, shape))
		for _, r := range []int{2, 4, 16} {
			g := NewGEPForkJoinR(tiles, r, shape)
			if err := CheckAcyclic(g); err != nil {
				t.Fatalf("%v r=%d: %v", shape, r, err)
			}
			s := Analyze(g)
			for k := KindA; k <= KindD; k++ {
				if s.ByKind[k] != df.ByKind[k] {
					t.Fatalf("%v r=%d kind %v: %d tasks, dataflow has %d",
						shape, r, k, s.ByKind[k], df.ByKind[k])
				}
			}
		}
	}
	// Span monotone in r (unit costs, triangular).
	prev := 1 << 30
	for _, r := range []int{2, 4, 16} {
		g := NewGEPForkJoinR(tiles, r, gep.Triangular)
		span := unitSpan(t, g)
		if span > prev {
			t.Fatalf("r=%d span %d grew from %d", r, span, prev)
		}
		prev = span
	}
	// r=2 must match the dedicated 2-way builder's span.
	two := unitSpan(t, NewGEPForkJoin(tiles, gep.Triangular))
	rw := unitSpan(t, NewGEPForkJoinR(tiles, 2, gep.Triangular))
	if two != rw {
		t.Fatalf("2-way span %d != r=2 span %d", two, rw)
	}
}

func TestRWayInvalid(t *testing.T) {
	for _, f := range []func(){
		func() { NewGEPForkJoinR(16, 1, gep.Triangular) },
		func() { NewGEPForkJoinR(12, 8, gep.Triangular) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// unitSpan computes the critical path length in tasks (joins free).
func unitSpan(t *testing.T, g Graph) int {
	n := g.Len()
	indeg := make([]int, n)
	depth := make([]int, n)
	var queue []int
	for i := 0; i < n; i++ {
		indeg[i] = g.InDeg(i)
		if indeg[i] == 0 {
			queue = append(queue, i)
			if g.Kind(i) != KindJoin {
				depth[i] = 1
			}
		}
	}
	best := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if depth[id] > best {
			best = depth[id]
		}
		g.EachSucc(id, func(s int) {
			d := depth[id]
			if g.Kind(s) != KindJoin {
				d++
			}
			if d > depth[s] {
				depth[s] = d
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		})
	}
	return best
}

func TestSWWavefrontBarrier(t *testing.T) {
	for _, tiles := range []int{1, 2, 4, 8} {
		g := NewSWWavefrontBarrier(tiles)
		if err := CheckAcyclic(g); err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		s := Analyze(g)
		if s.ByKind[KindSW] != tiles*tiles {
			t.Fatalf("tiles=%d: %d SW tasks", tiles, s.ByKind[KindSW])
		}
		if s.ByKind[KindJoin] != 2*tiles-1 {
			t.Fatalf("tiles=%d: %d joins, want %d", tiles, s.ByKind[KindJoin], 2*tiles-1)
		}
		// Span: exactly one task per diagonal -> 2T-1, like data-flow.
		if span := unitSpan(t, g); span != 2*tiles-1 {
			t.Fatalf("tiles=%d: span %d, want %d", tiles, span, 2*tiles-1)
		}
	}
}
