package dag

import (
	"fmt"
	"sort"

	"dpflow/internal/gep"
)

// GEPDataflow is the analytic data-flow graph of a GEP benchmark at tile
// granularity: one task per (tile, elimination step) with exactly the
// dependencies the CnC item collections enforce (see internal/gep):
//
//	task(I,J,K) ← task(I,J,K−1)            write-write, same tile
//	B,C,D(·,·,K) ← A(K,K,K)                pivot block
//	D(I,J,K) ← B(K,J,K), C(I,K,K)          pivot row / column tiles
//
// Under the Triangular shape (GE) only tiles with I ≥ K ∧ J ≥ K have
// tasks. Under Cube (FW) every tile updates at every step, which adds the
// write-after-read anti-dependencies the runtime enforces (gep.antiDeps):
// the phase-K+1 writer of a former pivot row/column/diagonal tile waits
// for every phase-K reader of that tile.
type GEPDataflow struct {
	T     int
	Shape gep.Shape
	// offsets[k] is the id of the first task of phase k (triangular only).
	offsets []int
	n       int
}

// NewGEPDataflow builds the graph for a tiles×tiles grid.
func NewGEPDataflow(tiles int, shape gep.Shape) *GEPDataflow {
	if tiles < 1 {
		panic(fmt.Sprintf("dag: tiles = %d", tiles))
	}
	g := &GEPDataflow{T: tiles, Shape: shape}
	if shape == gep.Cube {
		g.n = tiles * tiles * tiles
		return g
	}
	g.offsets = make([]int, tiles+1)
	for k := 0; k < tiles; k++ {
		side := tiles - k
		g.offsets[k+1] = g.offsets[k] + side*side
	}
	g.n = g.offsets[tiles]
	return g
}

// Len implements Graph.
func (g *GEPDataflow) Len() int { return g.n }

// ID returns the task id of tile (i, j) at phase k. It panics when the
// coordinates are outside the task space.
func (g *GEPDataflow) ID(i, j, k int) int {
	t := g.T
	if k < 0 || k >= t || i < 0 || i >= t || j < 0 || j >= t {
		panic(fmt.Sprintf("dag: coordinates (%d,%d,%d) outside %d tiles", i, j, k, t))
	}
	if g.Shape == gep.Cube {
		return k*t*t + i*t + j
	}
	if i < k || j < k {
		panic(fmt.Sprintf("dag: (%d,%d,%d) has no task under the triangular shape", i, j, k))
	}
	side := t - k
	return g.offsets[k] + (i-k)*side + (j - k)
}

// Coords decodes a task id to (i, j, k).
func (g *GEPDataflow) Coords(id int) (i, j, k int) {
	t := g.T
	if g.Shape == gep.Cube {
		rem := id % (t * t)
		return rem / t, rem % t, id / (t * t)
	}
	k = sort.Search(t, func(p int) bool { return g.offsets[p+1] > id }) // phase
	rem := id - g.offsets[k]
	side := t - k
	return k + rem/side, k + rem%side, k
}

// Kind implements Graph.
func (g *GEPDataflow) Kind(id int) Kind {
	i, j, k := g.Coords(id)
	return kindOf(gep.Classify(i, j, k))
}

func kindOf(f gep.Func) Kind {
	switch f {
	case gep.FuncA:
		return KindA
	case gep.FuncB:
		return KindB
	case gep.FuncC:
		return KindC
	default:
		return KindD
	}
}

// hasTask reports whether tile (i, j) has a task at phase k.
func (g *GEPDataflow) hasTask(i, j, k int) bool {
	if k < 0 || k >= g.T {
		return false
	}
	if g.Shape == gep.Cube {
		return true
	}
	return i >= k && j >= k
}

// InDeg implements Graph.
func (g *GEPDataflow) InDeg(id int) int {
	i, j, k := g.Coords(id)
	d := 0
	if g.hasTask(i, j, k-1) {
		d++ // write-write on the same tile
	}
	switch gep.Classify(i, j, k) {
	case gep.FuncB, gep.FuncC:
		d++ // A(K,K,K)
	case gep.FuncD:
		d += 3 // A, B(K,J,K), C(I,K,K)
	}
	if g.Shape == gep.Cube && k > 0 {
		p := k - 1
		switch {
		case i == p && j == p:
			d += 2 * (g.T - 1) // all B(p,x,p) and C(x,p,p) read the old diagonal
		case i == p, j == p:
			d += g.T - 1 // all D readers of the old pivot row / column tile
		}
	}
	return d
}

// EachSucc implements Graph.
func (g *GEPDataflow) EachSucc(id int, f func(int)) {
	i, j, k := g.Coords(id)
	t := g.T
	lo := 0
	if g.Shape == gep.Triangular {
		lo = k
	}
	switch gep.Classify(i, j, k) {
	case gep.FuncA:
		// A feeds every other task of its phase.
		for x := lo; x < t; x++ {
			if x == k {
				continue
			}
			f(g.ID(k, x, k)) // pivot row (B)
			f(g.ID(x, k, k)) // pivot column (C)
		}
		for ii := lo; ii < t; ii++ {
			if ii == k {
				continue
			}
			for jj := lo; jj < t; jj++ {
				if jj == k {
					continue
				}
				f(g.ID(ii, jj, k)) // interior (D)
			}
		}
	case gep.FuncB:
		// B(K,J,K) feeds every D in column J of the phase.
		for ii := lo; ii < t; ii++ {
			if ii != k {
				f(g.ID(ii, j, k))
			}
		}
	case gep.FuncC:
		// C(I,K,K) feeds every D in row I of the phase.
		for jj := lo; jj < t; jj++ {
			if jj != k {
				f(g.ID(i, jj, k))
			}
		}
	}
	if g.hasTask(i, j, k+1) {
		f(g.ID(i, j, k+1)) // next elimination step on the same tile
	}
	// Cube anti-dependencies: this task read pivot tiles of phase k whose
	// phase-k+1 writers must wait for it.
	if g.Shape == gep.Cube && k+1 < t {
		switch gep.Classify(i, j, k) {
		case gep.FuncB, gep.FuncC:
			f(g.ID(k, k, k+1)) // read the diagonal tile (k,k)
		case gep.FuncD:
			f(g.ID(i, k, k+1)) // read pivot-column tile (i,k)
			f(g.ID(k, j, k+1)) // read pivot-row tile (k,j)
		}
	}
}

// EachPred calls f for every predecessor (used by tests and span checks).
func (g *GEPDataflow) EachPred(id int, f func(int)) {
	i, j, k := g.Coords(id)
	if g.hasTask(i, j, k-1) {
		f(g.ID(i, j, k-1))
	}
	switch gep.Classify(i, j, k) {
	case gep.FuncB, gep.FuncC:
		f(g.ID(k, k, k))
	case gep.FuncD:
		f(g.ID(k, k, k))
		f(g.ID(k, j, k))
		f(g.ID(i, k, k))
	}
	if g.Shape == gep.Cube && k > 0 {
		p := k - 1
		switch {
		case i == p && j == p:
			for x := 0; x < g.T; x++ {
				if x != p {
					f(g.ID(p, x, p)) // B readers of the old diagonal
					f(g.ID(x, p, p)) // C readers of the old diagonal
				}
			}
		case i == p:
			for x := 0; x < g.T; x++ {
				if x != p {
					f(g.ID(x, j, p)) // D readers of the old pivot-row tile
				}
			}
		case j == p:
			for x := 0; x < g.T; x++ {
				if x != p {
					f(g.ID(i, x, p)) // D readers of the old pivot-column tile
				}
			}
		}
	}
}

// SWDataflow is the analytic wavefront graph of Smith-Waterman at tile
// granularity: task (I, J) depends on its west, north and north-west
// neighbours.
type SWDataflow struct {
	T int
}

// NewSWDataflow builds the graph for a tiles×tiles grid.
func NewSWDataflow(tiles int) *SWDataflow {
	if tiles < 1 {
		panic(fmt.Sprintf("dag: tiles = %d", tiles))
	}
	return &SWDataflow{T: tiles}
}

// Len implements Graph.
func (g *SWDataflow) Len() int { return g.T * g.T }

// ID returns the task id of tile (i, j).
func (g *SWDataflow) ID(i, j int) int { return i*g.T + j }

// Coords decodes a task id.
func (g *SWDataflow) Coords(id int) (i, j int) { return id / g.T, id % g.T }

// Kind implements Graph.
func (g *SWDataflow) Kind(int) Kind { return KindSW }

// InDeg implements Graph.
func (g *SWDataflow) InDeg(id int) int {
	i, j := g.Coords(id)
	switch {
	case i > 0 && j > 0:
		return 3
	case i > 0 || j > 0:
		return 1
	default:
		return 0
	}
}

// EachSucc implements Graph.
func (g *SWDataflow) EachSucc(id int, f func(int)) {
	i, j := g.Coords(id)
	if i+1 < g.T {
		f(g.ID(i+1, j))
	}
	if j+1 < g.T {
		f(g.ID(i, j+1))
	}
	if i+1 < g.T && j+1 < g.T {
		f(g.ID(i+1, j+1))
	}
}
