// Package dag builds the task graphs that the two execution models induce
// over the same set of base-case tile tasks, at tile granularity:
//
//   - The data-flow graph contains exactly the true dependencies of the DP
//     recurrence (what the CnC item collections enforce). It is represented
//     analytically — predecessors and successors of a task are computed
//     from its coordinates — so graphs with millions of tasks cost a few
//     bytes per task.
//   - The fork-join graph contains the ordering that Spawn/Wait imposes:
//     the same base tasks plus zero-cost join nodes, with an edge from
//     every task of a stage to the join that guards the next stage. It is
//     materialised in CSR form by running the R-DP recursion symbolically.
//
// Comparing the two graphs' spans quantifies the paper's central claim:
// joins add artificial dependencies that grow the span asymptotically.
package dag

import "fmt"

// Kind classifies a task node.
type Kind uint8

// Task kinds. KindA..KindD are the GEP functions, KindSW is a
// Smith-Waterman tile, KindJoin is a zero-cost fork-join synchronisation
// node.
const (
	KindA Kind = iota
	KindB
	KindC
	KindD
	KindSW
	KindJoin
	NumKinds = int(KindJoin) + 1
)

// String names the kind.
func (k Kind) String() string {
	return [...]string{"A", "B", "C", "D", "SW", "join"}[k]
}

// Graph is a task DAG. Implementations must be immutable after
// construction so they can be shared across simulations.
type Graph interface {
	// Len returns the number of nodes; ids are 0..Len()-1.
	Len() int
	// Kind returns the node's task kind.
	Kind(id int) Kind
	// InDeg returns the number of predecessors of the node.
	InDeg(id int) int
	// EachSucc calls f for every successor of id.
	EachSucc(id int, f func(succ int))
}

// Stats summarises a graph.
type Stats struct {
	Nodes     int
	Tasks     int // non-join nodes
	Edges     int
	ByKind    [NumKinds]int
	MaxInDeg  int
	SourceCnt int // nodes with no predecessors
}

// Analyze walks a graph and returns its statistics.
func Analyze(g Graph) Stats {
	var s Stats
	s.Nodes = g.Len()
	for id := 0; id < g.Len(); id++ {
		k := g.Kind(id)
		s.ByKind[k]++
		if k != KindJoin {
			s.Tasks++
		}
		d := g.InDeg(id)
		if d == 0 {
			s.SourceCnt++
		}
		if d > s.MaxInDeg {
			s.MaxInDeg = d
		}
		g.EachSucc(id, func(int) { s.Edges++ })
	}
	return s
}

// CheckAcyclic runs Kahn's algorithm and returns an error if the graph has
// a cycle or inconsistent in-degrees (a node never becoming ready).
func CheckAcyclic(g Graph) error {
	n := g.Len()
	indeg := make([]int32, n)
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.InDeg(i))
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		g.EachSucc(int(id), func(s int) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, int32(s))
			}
			if indeg[s] < 0 {
				panic(fmt.Sprintf("dag: in-degree of %d went negative (declared %d)", s, g.InDeg(s)))
			}
		})
	}
	if seen != n {
		return fmt.Errorf("dag: only %d of %d nodes reachable from sources — cycle or wrong InDeg", seen, n)
	}
	return nil
}

// CSR is an explicit graph in compressed sparse row form, built by the
// fork-join builders.
type CSR struct {
	kinds   []Kind
	indeg   []int32
	succOff []int32
	succs   []int32
}

// Len implements Graph.
func (c *CSR) Len() int { return len(c.kinds) }

// Kind implements Graph.
func (c *CSR) Kind(id int) Kind { return c.kinds[id] }

// InDeg implements Graph.
func (c *CSR) InDeg(id int) int { return int(c.indeg[id]) }

// EachSucc implements Graph.
func (c *CSR) EachSucc(id int, f func(int)) {
	for _, s := range c.succs[c.succOff[id]:c.succOff[id+1]] {
		f(int(s))
	}
}

// builder accumulates nodes and edges, then freezes into a CSR.
type builder struct {
	kinds []Kind
	from  []int32
	to    []int32
}

func (b *builder) node(k Kind) int32 {
	b.kinds = append(b.kinds, k)
	return int32(len(b.kinds) - 1)
}

func (b *builder) edge(from, to int32) {
	if from < 0 {
		return // root call has no predecessor
	}
	b.from = append(b.from, from)
	b.to = append(b.to, to)
}

func (b *builder) freeze() *CSR {
	n := len(b.kinds)
	c := &CSR{
		kinds:   b.kinds,
		indeg:   make([]int32, n),
		succOff: make([]int32, n+1),
		succs:   make([]int32, len(b.from)),
	}
	for i := range b.from {
		c.succOff[b.from[i]+1]++
		c.indeg[b.to[i]]++
	}
	for i := 0; i < n; i++ {
		c.succOff[i+1] += c.succOff[i]
	}
	fill := make([]int32, n)
	for i := range b.from {
		f := b.from[i]
		c.succs[c.succOff[f]+fill[f]] = b.to[i]
		fill[f]++
	}
	b.from, b.to = nil, nil
	return c
}
