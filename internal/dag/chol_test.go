package dag

import "testing"

func TestCholDataflowIDCoordsRoundTrip(t *testing.T) {
	const tiles = 7
	g := NewCholDataflow(tiles)
	seen := make(map[int]bool)
	for k := 0; k < tiles; k++ {
		for j := k; j < tiles; j++ {
			for i := j; i < tiles; i++ {
				id := g.ID(i, j, k)
				if seen[id] {
					t.Fatalf("id %d assigned twice", id)
				}
				seen[id] = true
				ri, rj, rk := g.Coords(id)
				if ri != i || rj != j || rk != k {
					t.Fatalf("Coords(ID(%d,%d,%d)) = (%d,%d,%d)", i, j, k, ri, rj, rk)
				}
			}
		}
	}
	if len(seen) != g.Len() {
		t.Fatalf("enumerated %d tasks, Len() = %d", len(seen), g.Len())
	}
	if want := tiles * (tiles + 1) * (tiles + 2) / 6; g.Len() != want {
		t.Fatalf("Len() = %d, want tetrahedral %d", g.Len(), want)
	}
}

func TestCholDataflowCensusAndAcyclic(t *testing.T) {
	for _, tiles := range []int{1, 2, 3, 4, 8} {
		g := NewCholDataflow(tiles)
		if err := CheckAcyclic(g); err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		st := Analyze(g)
		if st.ByKind[KindA] != tiles {
			t.Fatalf("tiles=%d: %d POTRF tasks, want %d", tiles, st.ByKind[KindA], tiles)
		}
		if want := tiles * (tiles - 1) / 2; st.ByKind[KindC] != want {
			t.Fatalf("tiles=%d: %d TRSM tasks, want %d", tiles, st.ByKind[KindC], want)
		}
		if want := (tiles - 1) * tiles * (tiles + 1) / 6; st.ByKind[KindD] != want {
			t.Fatalf("tiles=%d: %d UPDATE tasks, want %d", tiles, st.ByKind[KindD], want)
		}
		if st.SourceCnt != 1 {
			t.Fatalf("tiles=%d: %d sources, want 1 (POTRF(0))", tiles, st.SourceCnt)
		}
	}
}

// TestCholDataflowPredSuccSymmetry cross-checks the three analytic views:
// every successor edge appears as a predecessor edge, and InDeg counts the
// predecessors exactly.
func TestCholDataflowPredSuccSymmetry(t *testing.T) {
	g := NewCholDataflow(6)
	preds := make(map[[2]int]int)
	for id := 0; id < g.Len(); id++ {
		g.EachSucc(id, func(s int) { preds[[2]int{id, s}]++ })
	}
	edges := 0
	for id := 0; id < g.Len(); id++ {
		deg := 0
		g.EachPred(id, func(p int) {
			deg++
			edges++
			if preds[[2]int{p, id}] != 1 {
				t.Fatalf("pred edge %d->%d not mirrored by EachSucc (count %d)", p, id, preds[[2]int{p, id}])
			}
		})
		if deg != g.InDeg(id) {
			i, j, k := g.Coords(id)
			t.Fatalf("task (%d,%d,%d): InDeg = %d but EachPred visited %d", i, j, k, g.InDeg(id), deg)
		}
	}
	if edges != len(preds) {
		t.Fatalf("EachPred saw %d edges, EachSucc emitted %d", edges, len(preds))
	}
}

// longestPath returns the critical path length in non-join tasks.
func longestPath(t *testing.T, g Graph) int {
	t.Helper()
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.InDeg(i)
	}
	depth := make([]int, n)
	var queue []int
	best := 0
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		d := depth[id]
		if g.Kind(id) != KindJoin {
			d++
		}
		if d > best {
			best = d
		}
		g.EachSucc(id, func(s int) {
			if d > depth[s] {
				depth[s] = d
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		})
	}
	if seen != n {
		t.Fatalf("longestPath visited %d of %d nodes", seen, n)
	}
	return best
}

// TestCholSpans pins the span claim for Cholesky: the data-flow critical
// path is the 3T−2 chain POTRF→TRSM→UPDATE per phase, while the fork-join
// schedule's per-phase barriers keep the same task-count span here (the
// right-looking batches are depth-1) — the gap shows up in width, not
// depth, which is why the simulated crossover still separates them.
func TestCholSpans(t *testing.T) {
	for _, tiles := range []int{2, 4, 8} {
		df := NewCholDataflow(tiles)
		fj := NewCholForkJoin(tiles)
		if err := CheckAcyclic(fj); err != nil {
			t.Fatalf("tiles=%d fork-join: %v", tiles, err)
		}
		want := 3*tiles - 2
		if got := longestPath(t, df); got != want {
			t.Fatalf("tiles=%d: data-flow span %d, want %d", tiles, got, want)
		}
		if got := longestPath(t, fj); got != want {
			t.Fatalf("tiles=%d: fork-join span %d, want %d", tiles, got, want)
		}
		dfTasks := Analyze(df).Tasks
		if fjTasks := Analyze(fj).Tasks; fjTasks != dfTasks {
			t.Fatalf("tiles=%d: fork-join has %d tasks, data-flow %d", tiles, fjTasks, dfTasks)
		}
	}
}
