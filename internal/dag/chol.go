package dag

import (
	"fmt"
	"math"
	"sort"
)

// CholDataflow is the analytic data-flow graph of tiled Cholesky at tile
// granularity (see internal/chol): one task per (i, j, k) with
// 0 ≤ k ≤ j ≤ i < T, where (k,k,k) is POTRF of the phase-k diagonal tile,
// (i,k,k) with i > k is the TRSM of tile (i,k), and (i,j,k) with j > k is
// the trailing UPDATE of tile (i,j). The dependencies are exactly what the
// CnC item collection enforces:
//
//	POTRF(k)      ← UPDATE(k,k,k−1)
//	TRSM(i,k)     ← POTRF(k), UPDATE(i,k,k−1)
//	UPDATE(i,j,k) ← TRSM(i,k), TRSM(j,k), UPDATE(i,j,k−1)
//
// with the TRSM dependency counted once on the diagonal (i == j). POTRF
// maps to KindA, TRSM to KindC (a pivot-column solve) and UPDATE to KindD,
// so the analytical model prices the kernels with the GE-family formulas.
type CholDataflow struct {
	T int
	// offsets[k] is the id of the first task of phase k; phase k holds the
	// lower triangle {(i,j): k ≤ j ≤ i < T} of s(s+1)/2 tasks, s = T−k.
	offsets []int
	n       int
}

// NewCholDataflow builds the graph for a tiles×tiles tile grid.
func NewCholDataflow(tiles int) *CholDataflow {
	if tiles < 1 {
		panic(fmt.Sprintf("dag: tiles = %d", tiles))
	}
	g := &CholDataflow{T: tiles, offsets: make([]int, tiles+1)}
	for k := 0; k < tiles; k++ {
		s := tiles - k
		g.offsets[k+1] = g.offsets[k] + s*(s+1)/2
	}
	g.n = g.offsets[tiles]
	return g
}

// Len implements Graph. The total is the tetrahedral number T(T+1)(T+2)/6.
func (g *CholDataflow) Len() int { return g.n }

// ID returns the task id of (i, j, k). It panics outside the task space.
func (g *CholDataflow) ID(i, j, k int) int {
	if k < 0 || k > j || j > i || i >= g.T {
		panic(fmt.Sprintf("dag: (%d,%d,%d) outside the Cholesky task space (T=%d)", i, j, k, g.T))
	}
	a, b := i-k, j-k
	return g.offsets[k] + a*(a+1)/2 + b
}

// Coords decodes a task id to (i, j, k).
func (g *CholDataflow) Coords(id int) (i, j, k int) {
	k = sort.Search(g.T, func(p int) bool { return g.offsets[p+1] > id })
	rem := id - g.offsets[k]
	// Largest a with a(a+1)/2 <= rem; the float guess is fixed up exactly.
	a := int((math.Sqrt(float64(8*rem+1)) - 1) / 2)
	for a*(a+1)/2 > rem {
		a--
	}
	for (a+1)*(a+2)/2 <= rem {
		a++
	}
	return k + a, k + rem - a*(a+1)/2, k
}

// Kind implements Graph.
func (g *CholDataflow) Kind(id int) Kind {
	i, j, k := g.Coords(id)
	switch {
	case i == k: // i == j == k
		return KindA
	case j == k:
		return KindC
	default:
		return KindD
	}
}

// InDeg implements Graph.
func (g *CholDataflow) InDeg(id int) int {
	i, j, k := g.Coords(id)
	prev := 0
	if k > 0 {
		prev = 1 // UPDATE(i,j,k−1), the write-write dependency on the tile
	}
	switch {
	case i == k:
		return prev
	case j == k:
		return 1 + prev // POTRF(k)
	case i == j:
		return 1 + prev // TRSM(i,k), counted once on the diagonal
	default:
		return 2 + prev // TRSM(i,k) and TRSM(j,k)
	}
}

// EachSucc implements Graph.
func (g *CholDataflow) EachSucc(id int, f func(int)) {
	i, j, k := g.Coords(id)
	t := g.T
	switch {
	case i == k: // POTRF(k) feeds every TRSM of its phase
		for x := k + 1; x < t; x++ {
			f(g.ID(x, k, k))
		}
	case j == k: // TRSM(i,k) feeds the UPDATEs of row i and column i
		for x := k + 1; x <= i; x++ {
			f(g.ID(i, x, k))
		}
		for x := i + 1; x < t; x++ {
			f(g.ID(x, i, k))
		}
	default: // UPDATE(i,j,k) feeds the phase-k+1 task on the same tile
		f(g.ID(i, j, k+1)) // exists: j ≥ k+1 in the UPDATE space
	}
}

// EachPred calls f for every predecessor (used by tests and span checks).
func (g *CholDataflow) EachPred(id int, f func(int)) {
	i, j, k := g.Coords(id)
	switch {
	case i == k:
	case j == k:
		f(g.ID(k, k, k))
	default:
		f(g.ID(i, k, k))
		if j != i {
			f(g.ID(j, k, k))
		}
	}
	if k > 0 {
		f(g.ID(i, j, k-1))
	}
}

// NewCholForkJoin materialises the ordering DAG of the fork-join Cholesky
// (chol.ForkJoin): the right-looking schedule with a taskwait after the
// TRSM batch and after the UPDATE batch of each phase. POTRF runs on the
// spawning goroutine, so it chains sequentially between the joins.
func NewCholForkJoin(tiles int) *CSR {
	if tiles < 1 {
		panic(fmt.Sprintf("dag: tiles = %d", tiles))
	}
	b := &builder{}
	cur := int32(-1)
	for k := 0; k < tiles; k++ {
		p := b.node(KindA)
		b.edge(cur, p)
		cur = p
		if k+1 >= tiles {
			continue // last phase: lone POTRF, no batches
		}
		var sinks []int32
		for i := k + 1; i < tiles; i++ {
			t := b.node(KindC)
			b.edge(cur, t)
			sinks = append(sinks, t)
		}
		cur = b.joinAll(sinks)
		sinks = sinks[:0]
		for j := k + 1; j < tiles; j++ {
			for i := j; i < tiles; i++ {
				t := b.node(KindD)
				b.edge(cur, t)
				sinks = append(sinks, t)
			}
		}
		cur = b.joinAll(sinks)
	}
	return b.freeze()
}

// joinAll emits a zero-cost join node after every sink of a parallel batch.
func (b *builder) joinAll(sinks []int32) int32 {
	j := b.node(KindJoin)
	for _, s := range sinks {
		b.edge(s, j)
	}
	return j
}
