package dag

import (
	"fmt"

	"dpflow/internal/gep"
)

// NewGEPForkJoinR materialises the ordering DAG of the r-way fork-join
// R-DP execution (internal/gep's ForkJoinR) for a tiles×tiles grid.
// tiles must be a power of r. With r == tiles the recursion flattens into
// one level of phase-parallel batches — the closest a fork-join program
// gets to the data-flow schedule — so sweeping r quantifies how much of
// the artificial-dependency span the parametric r-way algorithms of the
// paper's references [15, 16] recover.
func NewGEPForkJoinR(tiles, r int, shape gep.Shape) *CSR {
	if r < 2 {
		panic(fmt.Sprintf("dag: r-way split needs r >= 2, got %d", r))
	}
	for s := tiles; s > 1; s /= r {
		if s%r != 0 {
			panic(fmt.Sprintf("dag: tiles=%d is not a power of r=%d", tiles, r))
		}
	}
	b := &rwayBuilder{r: r, shape: shape}
	b.funcA(-1, 0, tiles)
	return b.freeze()
}

type rwayBuilder struct {
	builder
	r     int
	shape gep.Shape
}

func (b *rwayBuilder) leaf(pred int32, k Kind) int32 {
	n := b.node(k)
	b.edge(pred, n)
	return n
}

func (b *rwayBuilder) joinAll(sinks []int32) int32 {
	if len(sinks) == 1 {
		return sinks[0]
	}
	j := b.node(KindJoin)
	for _, s := range sinks {
		b.edge(s, j)
	}
	return j
}

func (b *rwayBuilder) funcA(pred int32, d, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindA)
	}
	r, h := b.r, s/b.r
	cube := b.shape == gep.Cube
	cur := pred
	for k := 0; k < r; k++ {
		kd := d + k*h
		cur = b.funcA(cur, kd, h)
		var batch []int32
		for x := 0; x < r; x++ {
			if x == k || (!cube && x < k) {
				continue
			}
			batch = append(batch,
				b.funcB(cur, kd, d+x*h, h),
				b.funcC(cur, d+x*h, kd, h))
		}
		if len(batch) > 0 {
			cur = b.joinAll(batch)
		}
		batch = batch[:0]
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i == k || j == k || (!cube && (i < k || j < k)) {
					continue
				}
				batch = append(batch, b.funcD(cur, h))
			}
		}
		if len(batch) > 0 {
			cur = b.joinAll(batch)
		}
	}
	return cur
}

func (b *rwayBuilder) funcB(pred int32, i0, j0, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindB)
	}
	r, h := b.r, s/b.r
	cube := b.shape == gep.Cube
	cur := pred
	for k := 0; k < r; k++ {
		var batch []int32
		for j := 0; j < r; j++ {
			batch = append(batch, b.funcB(cur, i0+k*h, j0+j*h, h))
		}
		cur = b.joinAll(batch)
		batch = batch[:0]
		for i := 0; i < r; i++ {
			if i == k || (!cube && i < k) {
				continue
			}
			for j := 0; j < r; j++ {
				batch = append(batch, b.funcD(cur, h))
			}
		}
		if len(batch) > 0 {
			cur = b.joinAll(batch)
		}
	}
	return cur
}

func (b *rwayBuilder) funcC(pred int32, i0, j0, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindC)
	}
	r, h := b.r, s/b.r
	cube := b.shape == gep.Cube
	cur := pred
	for k := 0; k < r; k++ {
		var batch []int32
		for i := 0; i < r; i++ {
			batch = append(batch, b.funcC(cur, i0+i*h, j0+k*h, h))
		}
		cur = b.joinAll(batch)
		batch = batch[:0]
		for j := 0; j < r; j++ {
			if j == k || (!cube && j < k) {
				continue
			}
			for i := 0; i < r; i++ {
				batch = append(batch, b.funcD(cur, h))
			}
		}
		if len(batch) > 0 {
			cur = b.joinAll(batch)
		}
	}
	return cur
}

// funcD's sub-blocks have no distinguishing coordinates in the DAG — every
// descendant is a D leaf — so only the size matters.
func (b *rwayBuilder) funcD(pred int32, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindD)
	}
	r, h := b.r, s/b.r
	cur := pred
	for k := 0; k < r; k++ {
		batch := make([]int32, 0, r*r)
		for i := 0; i < r*r; i++ {
			batch = append(batch, b.funcD(cur, h))
		}
		cur = b.joinAll(batch)
	}
	return cur
}
