package dag

import (
	"fmt"

	"dpflow/internal/gep"
)

// NewGEPForkJoin materialises the ordering DAG of the fork-join R-DP
// execution (Listing 3) for a tiles×tiles grid: the recursion is run
// symbolically down to single-tile base cases; every parallel stage is
// followed by a zero-cost join node, and sequential stages are chained —
// so the graph contains precisely the constraints Spawn/Wait imposes,
// artificial dependencies included.
//
// tiles must be a power of two (the recursion halves until single tiles).
func NewGEPForkJoin(tiles int, shape gep.Shape) *CSR {
	if tiles < 1 || tiles&(tiles-1) != 0 {
		panic(fmt.Sprintf("dag: fork-join tiles = %d must be a power of two", tiles))
	}
	b := &fjBuilder{shape: shape}
	b.funcA(-1, 0, tiles)
	return b.freeze()
}

// fjBuilder runs the GEP recursion symbolically. Each func takes the node
// that must precede the call (-1 for none) and returns the node that
// completes it, mirroring the sequential/parallel structure of the real
// drivers in internal/gep.
type fjBuilder struct {
	builder
	shape gep.Shape
}

// leaf emits a base task of the given kind after pred.
func (b *fjBuilder) leaf(pred int32, k Kind) int32 {
	n := b.node(k)
	b.edge(pred, n)
	return n
}

// join emits a zero-cost join node after every sink of a parallel stage.
func (b *fjBuilder) join(sinks ...int32) int32 {
	j := b.node(KindJoin)
	for _, s := range sinks {
		b.edge(s, j)
	}
	return j
}

func (b *fjBuilder) funcA(pred int32, d, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindA)
	}
	h := s / 2
	cur := b.funcA(pred, d, h)
	cur = b.join(b.funcB(cur, d, d+h, d, h), b.funcC(cur, d+h, d, d, h))
	cur = b.funcD(cur, d+h, d+h, d, h)
	cur = b.funcA(cur, d+h, h)
	if b.shape == gep.Cube {
		cur = b.join(b.funcB(cur, d+h, d, d+h, h), b.funcC(cur, d, d+h, d+h, h))
		cur = b.funcD(cur, d, d, d+h, h)
	}
	return cur
}

func (b *fjBuilder) funcB(pred int32, i0, j0, k0, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindB)
	}
	h := s / 2
	cur := b.join(b.funcB(pred, i0, j0, k0, h), b.funcB(pred, i0, j0+h, k0, h))
	cur = b.join(b.funcD(cur, i0+h, j0, k0, h), b.funcD(cur, i0+h, j0+h, k0, h))
	cur = b.join(b.funcB(cur, i0+h, j0, k0+h, h), b.funcB(cur, i0+h, j0+h, k0+h, h))
	if b.shape == gep.Cube {
		cur = b.join(b.funcD(cur, i0, j0, k0+h, h), b.funcD(cur, i0, j0+h, k0+h, h))
	}
	return cur
}

func (b *fjBuilder) funcC(pred int32, i0, j0, k0, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindC)
	}
	h := s / 2
	cur := b.join(b.funcC(pred, i0, j0, k0, h), b.funcC(pred, i0+h, j0, k0, h))
	cur = b.join(b.funcD(cur, i0, j0+h, k0, h), b.funcD(cur, i0+h, j0+h, k0, h))
	cur = b.join(b.funcC(cur, i0, j0+h, k0+h, h), b.funcC(cur, i0+h, j0+h, k0+h, h))
	if b.shape == gep.Cube {
		cur = b.join(b.funcD(cur, i0, j0, k0+h, h), b.funcD(cur, i0+h, j0, k0+h, h))
	}
	return cur
}

func (b *fjBuilder) funcD(pred int32, i0, j0, k0, s int) int32 {
	if s == 1 {
		return b.leaf(pred, KindD)
	}
	h := s / 2
	cur := pred
	for kk := 0; kk <= h; kk += h {
		cur = b.join(
			b.funcD(cur, i0, j0, k0+kk, h),
			b.funcD(cur, i0, j0+h, k0+kk, h),
			b.funcD(cur, i0+h, j0, k0+kk, h),
			b.funcD(cur, i0+h, j0+h, k0+kk, h),
		)
	}
	return cur
}

// NewSWForkJoin materialises the fork-join ordering DAG of the R-DP
// Smith-Waterman recursion R(X) = R(X00); R(X01) ∥ R(X10); R(X11) for a
// tiles×tiles grid (power of two).
func NewSWForkJoin(tiles int) *CSR {
	if tiles < 1 || tiles&(tiles-1) != 0 {
		panic(fmt.Sprintf("dag: fork-join tiles = %d must be a power of two", tiles))
	}
	b := &builder{}
	var rec func(pred int32, s int) int32
	rec = func(pred int32, s int) int32 {
		if s == 1 {
			n := b.node(KindSW)
			b.edge(pred, n)
			return n
		}
		h := s / 2
		cur := rec(pred, h)
		left := rec(cur, h)
		right := rec(cur, h)
		j := b.node(KindJoin)
		b.edge(left, j)
		b.edge(right, j)
		return rec(j, h)
	}
	rec(-1, tiles)
	return b.freeze()
}

// NewSWWavefrontBarrier materialises the barrier-per-anti-diagonal SW
// schedule (the paper's footnote 6): all tiles of diagonal d run in
// parallel, then a join, then diagonal d+1. Span-optimal (2T−1 stages) yet
// stiffer than the data-flow graph: the join makes every tile of a
// diagonal wait for all of the previous one.
func NewSWWavefrontBarrier(tiles int) *CSR {
	if tiles < 1 {
		panic(fmt.Sprintf("dag: tiles = %d", tiles))
	}
	b := &builder{}
	prev := int32(-1)
	for d := 0; d < 2*tiles-1; d++ {
		lo := 0
		if d >= tiles {
			lo = d - tiles + 1
		}
		hi := d
		if hi >= tiles {
			hi = tiles - 1
		}
		join := b.node(KindJoin)
		for i := lo; i <= hi; i++ {
			t := b.node(KindSW)
			b.edge(prev, t)
			b.edge(t, join)
		}
		prev = join
	}
	return b.freeze()
}
