package gep_test

import (
	"fmt"
	"math/rand"

	"dpflow/internal/core"
	"dpflow/internal/gep"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
)

// An Algorithm couples a base-case kernel with an update-set shape; the
// same recursion then runs serially, under fork-join, or as a CnC
// data-flow program. Here: Gaussian elimination through the data-flow
// driver, checked against the serial loop.
func ExampleAlgorithm() {
	alg := gep.Algorithm{Kernel: kernels.GE, Shape: gep.Triangular}

	x := matrix.NewSquare(32)
	x.FillDiagonallyDominant(rand.New(rand.NewSource(1)))
	ref := x.Clone()
	kernels.GESerial(ref)

	stats, err := alg.RunCnC(x, 8, 4, core.NativeCnC)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("matches serial:", matrix.Equal(x, ref))
	fmt.Println("base tasks:", stats.BaseTasks)
	// Output:
	// matches serial: true
	// base tasks: 30
}
