package gep

import (
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/matrix"
)

// Full-run allocation budgets (ISSUE 7): with dispatch envelopes, dependency
// latches, burst buffers and spawn frames pooled, a complete run's
// allocation bill is dominated by one-time graph construction plus the
// boxed struct keys of the tuned variants' declared dependencies — not by
// per-task scheduling traffic. The budgets below are ~2× current
// measurements at n=128/base=16 (8×8 tiles), so a pooling regression — one
// stray allocation per task cycle moves the total by hundreds — trips the
// gate while normal variance does not.
func TestRunAllocBudget(t *testing.T) {
	const n, base, workers = 128, 16, 4
	budget := map[string]float64{
		"GE/" + core.NativeCnC.String():  11000, // measured ~5.5k
		"GE/" + core.TunerCnC.String():   6000,  // measured ~2.8k
		"GE/" + core.ManualCnC.String():  7500,  // measured ~3.7k
		"GE/" + core.OMPTasking.String(): 200,   // measured ~48
		"FW/" + core.NativeCnC.String():  31000, // measured ~15.5k
		"FW/" + core.TunerCnC.String():   21000, // measured ~10.6k
		"FW/" + core.ManualCnC.String():  23000, // measured ~11.6k
		"FW/" + core.OMPTasking.String(): 300,   // measured ~83
	}
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()

	type runCase struct {
		name string
		run  func()
	}
	var cases []runCase
	mk := func(name string, alg Algorithm, input func() *matrix.Dense) {
		for _, v := range core.ParallelVariants {
			v := v
			cases = append(cases, runCase{name + "/" + v.String(), func() {
				x := input()
				if v == core.OMPTasking {
					if err := alg.ForkJoin(x, base, pool); err != nil {
						t.Fatal(err)
					}
					return
				}
				if _, err := alg.RunCnC(x, base, workers, v); err != nil {
					t.Fatal(err)
				}
			}})
		}
	}
	mk("GE", geAlg, func() *matrix.Dense { return geInput(n, 1) })
	mk("FW", fwAlg, func() *matrix.Dense { return fwInput(n, 1) })

	for _, c := range cases {
		c.run() // warm the pools and the runtime
		allocs := testing.AllocsPerRun(3, c.run)
		t.Logf("%s: %.0f allocs/run (budget %.0f)", c.name, allocs, budget[c.name])
		if max, ok := budget[c.name]; !ok {
			t.Errorf("%s: no budget declared", c.name)
		} else if allocs > max {
			t.Errorf("%s: %.0f allocs/run exceeds budget %.0f — a pooled dispatch path regressed", c.name, allocs, max)
		}
	}
}
