package gep

import (
	"math/rand"
	"testing"

	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
)

var geAlg = Algorithm{Kernel: kernels.GE, Shape: Triangular}
var fwAlg = Algorithm{Kernel: kernels.FW, Shape: Cube}

func geInput(n int, seed int64) *matrix.Dense {
	m := matrix.NewSquare(n)
	m.FillDiagonallyDominant(rand.New(rand.NewSource(seed)))
	return m
}

func fwInput(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			switch {
			case i == j:
				row[j] = 0
			case rng.Float64() < 0.35:
				row[j] = float64(1 + rng.Intn(9))
			default:
				row[j] = 1 << 30
			}
		}
	}
	return m
}

func TestBaseSize(t *testing.T) {
	cases := []struct{ n, base, want int }{
		{64, 8, 8}, {64, 64, 64}, {64, 100, 64}, {64, 7, 4}, {8, 1, 1}, {16, 3, 2},
	}
	for _, c := range cases {
		if got := BaseSize(c.n, c.base); got != c.want {
			t.Errorf("BaseSize(%d,%d) = %d, want %d", c.n, c.base, got, c.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := geAlg.RDPSerial(matrix.New(4, 8), 2); err == nil {
		t.Error("non-square accepted")
	}
	if err := geAlg.RDPSerial(matrix.NewSquare(6), 2); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if err := geAlg.RDPSerial(matrix.NewSquare(8), 0); err == nil {
		t.Error("base 0 accepted")
	}
}

// The serial recursion must match the loop-based serial kernel exactly —
// same per-element operation order, so bit-identical for GE, and exact
// shortest paths for FW with integer weights.
func TestRDPSerialMatchesLoop(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		for _, base := range []int{1, 2, 4, 8, 16, 64} {
			if base > n {
				continue
			}
			a := geInput(n, int64(n)*31+int64(base))
			ref := a.Clone()
			kernels.GESerial(ref)
			if err := geAlg.RDPSerial(a, base); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(a, ref) {
				t.Fatalf("GE RDP != loop for n=%d base=%d (maxdiff %g)", n, base, matrix.MaxAbsDiff(a, ref))
			}

			d := fwInput(n, int64(n)*17+int64(base))
			dref := d.Clone()
			kernels.FWSerial(dref)
			if err := fwAlg.RDPSerial(d, base); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(d, dref) {
				t.Fatalf("FW RDP != loop for n=%d base=%d (maxdiff %g)", n, base, matrix.MaxAbsDiff(d, dref))
			}
		}
	}
}

// Fork-join execution must equal the serial recursion on every worker
// count: the joins only constrain ordering, never change results.
func TestForkJoinMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
		for _, n := range []int{16, 32, 64} {
			base := 4
			a := geInput(n, int64(n))
			ref := a.Clone()
			kernels.GESerial(ref)
			if err := geAlg.ForkJoin(a, base, pool); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(a, ref) {
				t.Fatalf("GE forkjoin != serial (workers=%d n=%d)", workers, n)
			}

			d := fwInput(n, int64(n))
			dref := d.Clone()
			kernels.FWSerial(dref)
			if err := fwAlg.ForkJoin(d, base, pool); err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(d, dref) {
				t.Fatalf("FW forkjoin != serial (workers=%d n=%d)", workers, n)
			}
		}
		pool.Close()
	}
}

// Every CnC variant must reproduce the serial result on every worker count.
func TestCnCVariantsMatchSerial(t *testing.T) {
	variants := []core.Variant{core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC}
	for _, alg := range []struct {
		name string
		a    Algorithm
		gen  func(int, int64) *matrix.Dense
		ref  func(*matrix.Dense)
	}{
		{"GE", geAlg, geInput, kernels.GESerial},
		{"FW", fwAlg, fwInput, kernels.FWSerial},
	} {
		for _, v := range variants {
			for _, workers := range []int{1, 3} {
				for _, n := range []int{16, 32} {
					for _, base := range []int{4, 8, 32} {
						x := alg.gen(n, int64(n)+int64(base))
						ref := x.Clone()
						alg.ref(ref)
						stats, err := alg.a.RunCnC(x, base, workers, v)
						if err != nil {
							t.Fatalf("%s %v n=%d base=%d workers=%d: %v", alg.name, v, n, base, workers, err)
						}
						if !matrix.Equal(x, ref) {
							t.Fatalf("%s %v != serial (n=%d base=%d workers=%d, maxdiff %g)",
								alg.name, v, n, base, workers, matrix.MaxAbsDiff(x, ref))
						}
						tiles := n / BaseSize(n, base)
						wa, wb, wc, wd := TaskCount(tiles, alg.a.Shape)
						if want := wa + wb + wc + wd; stats.BaseTasks != want {
							t.Fatalf("%s %v: BaseTasks = %d, want %d (tiles=%d)",
								alg.name, v, stats.BaseTasks, want, tiles)
						}
					}
				}
			}
		}
	}
}

// The tuned variants must never take the speculative abort path: their
// declared dependencies cover every Get.
func TestTunedVariantsDoNotAbort(t *testing.T) {
	for _, v := range []core.Variant{core.TunerCnC, core.ManualCnC} {
		x := geInput(32, 5)
		stats, err := geAlg.RunCnC(x, 4, 3, v)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Aborts != 0 {
			t.Fatalf("%v: %d aborts; declared deps are incomplete", v, stats.Aborts)
		}
	}
}

// The native variant with several workers does hit the abort path on
// non-trivial problems — otherwise the test for authentic Intel semantics
// exercises nothing.
func TestNativeVariantAborts(t *testing.T) {
	x := geInput(64, 6)
	stats, err := geAlg.RunCnC(x, 4, 4, core.NativeCnC)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Aborts == 0 {
		t.Log("no aborts observed (scheduling was lucky); stats:", stats)
	}
	if stats.StepsDone == 0 {
		t.Fatal("no steps executed")
	}
}

func TestTaskCount(t *testing.T) {
	// Triangular, 4 tiles: A=4, B=C=3+2+1+0=6, D=9+4+1+0=14.
	a, b, c, d := TaskCount(4, Triangular)
	if a != 4 || b != 6 || c != 6 || d != 14 {
		t.Fatalf("triangular TaskCount(4) = %d,%d,%d,%d", a, b, c, d)
	}
	// Cube, 4 tiles: total must be 4^3.
	a, b, c, d = TaskCount(4, Cube)
	if a+b+c+d != 64 {
		t.Fatalf("cube TaskCount(4) total = %d, want 64", a+b+c+d)
	}
	if a != 4 || b != 12 || c != 12 || d != 36 {
		t.Fatalf("cube TaskCount(4) = %d,%d,%d,%d", a, b, c, d)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		i, j, k int
		want    Func
	}{
		{2, 2, 2, FuncA}, {2, 5, 2, FuncB}, {5, 2, 2, FuncC}, {3, 4, 2, FuncD},
		{1, 1, 2, FuncD}, {2, 1, 2, FuncB}, {1, 2, 2, FuncC},
	}
	for _, c := range cases {
		if got := Classify(c.i, c.j, c.k); got != c.want {
			t.Errorf("Classify(%d,%d,%d) = %v, want %v", c.i, c.j, c.k, got, c.want)
		}
	}
}

func TestTagString(t *testing.T) {
	tag := Tag{I: 1, J: 2, K: 3, S: 64}
	if tag.String() != "<<1,2>,<3,64>>" {
		t.Fatalf("Tag.String = %q", tag.String())
	}
}

func TestFuncString(t *testing.T) {
	if FuncA.String() != "funcA" || FuncD.String() != "funcD" {
		t.Fatal("Func names wrong")
	}
}

func TestRunDispatch(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 2})
	defer pool.Close()
	ref := geInput(16, 9)
	kernels.GESerial(ref)
	for _, v := range []core.Variant{core.SerialRDP, core.OMPTasking, core.NativeCnC, core.TunerCnC, core.ManualCnC} {
		x := geInput(16, 9)
		if _, err := geAlg.Run(v, x, 4, 2, pool); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !matrix.Equal(x, ref) {
			t.Fatalf("%v produced wrong result", v)
		}
	}
	if _, err := geAlg.Run(core.OMPTasking, geInput(16, 9), 4, 2, nil); err == nil {
		t.Fatal("OMPTasking without pool should error")
	}
	if _, err := geAlg.Run(core.SerialLoop, geInput(16, 9), 4, 2, nil); err == nil {
		t.Fatal("SerialLoop through gep should error")
	}
	if _, err := geAlg.Run(core.Variant(99), geInput(16, 9), 4, 2, nil); err == nil {
		t.Fatal("unknown variant should error")
	}
}

// Base size 1 (every element its own task) is the extreme the paper's task
// count formula covers; make sure the machinery survives it.
func TestBaseSizeOne(t *testing.T) {
	x := geInput(8, 3)
	ref := x.Clone()
	kernels.GESerial(ref)
	if _, err := geAlg.RunCnC(x, 1, 2, core.NativeCnC); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(x, ref) {
		t.Fatal("base=1 CnC GE wrong")
	}
}

// r-way recursions must reproduce the 2-way (and loop serial) results
// exactly, for every r and both shapes.
func TestRWayMatchesSerial(t *testing.T) {
	pool := forkjoin.NewPool(forkjoin.Config{Workers: 3})
	defer pool.Close()
	for _, alg := range []struct {
		name string
		a    Algorithm
		gen  func(int, int64) *matrix.Dense
		ref  func(*matrix.Dense)
	}{
		{"GE", geAlg, geInput, kernels.GESerial},
		{"FW", fwAlg, fwInput, kernels.FWSerial},
	} {
		for _, r := range []int{2, 4, 8} {
			for _, n := range []int{16, 64} {
				for _, base := range []int{1, 4, 16} {
					x := alg.gen(n, int64(r*n+base))
					ref := x.Clone()
					alg.ref(ref)
					if err := alg.a.RDPSerialR(x, base, r); err != nil {
						t.Fatalf("%s r=%d n=%d base=%d: %v", alg.name, r, n, base, err)
					}
					if !matrix.Equal(x, ref) {
						t.Fatalf("%s RDPSerialR r=%d n=%d base=%d wrong (maxdiff %g)",
							alg.name, r, n, base, matrix.MaxAbsDiff(x, ref))
					}
					y := alg.gen(n, int64(r*n+base))
					if err := alg.a.ForkJoinR(y, base, r, pool); err != nil {
						t.Fatalf("%s ForkJoinR r=%d: %v", alg.name, r, err)
					}
					if !matrix.Equal(y, ref) {
						t.Fatalf("%s ForkJoinR r=%d n=%d base=%d wrong", alg.name, r, n, base)
					}
				}
			}
		}
	}
}

// r == n collapses the recursion into the flat tiled algorithm; r not
// dividing n stops at a coarser tile but must stay correct.
func TestRWayEdgeCases(t *testing.T) {
	x := geInput(32, 1)
	ref := x.Clone()
	kernels.GESerial(ref)
	if err := geAlg.RDPSerialR(x, 1, 32); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(x, ref) {
		t.Fatal("flat r=n split wrong")
	}
	y := geInput(32, 2)
	ref2 := y.Clone()
	kernels.GESerial(ref2)
	if err := geAlg.RDPSerialR(y, 1, 3); err != nil { // 3 does not divide 32
		t.Fatal(err)
	}
	if !matrix.Equal(y, ref2) {
		t.Fatal("non-dividing r wrong")
	}
	if err := geAlg.RDPSerialR(geInput(8, 1), 2, 1); err == nil {
		t.Fatal("r=1 accepted")
	}
}

func TestBaseSizeR(t *testing.T) {
	cases := []struct{ n, base, r, want int }{
		{64, 8, 2, 8}, {64, 8, 4, 4}, {64, 1, 4, 1}, {64, 5, 4, 4}, {81, 3, 3, 3},
	}
	for _, c := range cases {
		if got := BaseSizeR(c.n, c.base, c.r); got != c.want {
			t.Errorf("BaseSizeR(%d,%d,%d) = %d, want %d", c.n, c.base, c.r, got, c.want)
		}
	}
}
