package gep

import (
	"fmt"

	"dpflow/internal/forkjoin"
	"dpflow/internal/matrix"
)

// This file implements the parametric r-way recursive divide-and-conquer
// generalisation of the GEP recursion (Javanmard et al., the paper's
// references [15, 16]): each level splits the block into r×r sub-blocks
// instead of 2×2. Larger r exposes more parallelism per join — as r
// approaches the tile count the algorithm degenerates into the flat tiled
// wavefront and the fork-join artificial-dependency penalty vanishes —
// at the price of losing cache obliviousness. The r-way fork-join span
// is the object of the rway experiment (cmd/dpbench -exp rway).

// BaseSizeR returns the block size the r-way recursion bottoms out at:
// divide n by r while the result stays divisible and above base.
func BaseSizeR(n, base, r int) int {
	s := n
	for s > base && s%r == 0 && s/r >= 1 {
		s /= r
	}
	return s
}

func validateR(x *matrix.Dense, base, r int) error {
	if err := validate(x, base); err != nil {
		return err
	}
	if r < 2 {
		return fmt.Errorf("gep: r-way split needs r >= 2, got %d", r)
	}
	return nil
}

// RDPSerialR runs the r-way recursion serially.
func (alg Algorithm) RDPSerialR(x *matrix.Dense, base, r int) error {
	if err := validateR(x, base, r); err != nil {
		return err
	}
	rec := rwayRec{x: x, base: base, r: r, alg: alg}
	rec.funcA(0, x.Rows())
	return nil
}

type rwayRec struct {
	x    *matrix.Dense
	base int
	r    int
	alg  Algorithm
}

// stop reports whether the recursion bottoms out at block size s.
func (rc *rwayRec) stop(s int) bool { return s <= rc.base || s%rc.r != 0 }

func (rc *rwayRec) funcA(d, s int) {
	if rc.stop(s) {
		rc.alg.Kernel(rc.x, d, d, d, s)
		return
	}
	r, h := rc.r, s/rc.r
	cube := rc.alg.Shape == Cube
	for k := 0; k < r; k++ {
		kd := d + k*h
		rc.funcA(kd, h)
		for x := 0; x < r; x++ {
			if x == k || (!cube && x < k) {
				continue
			}
			rc.funcB(kd, d+x*h, kd, h)
			rc.funcC(d+x*h, kd, kd, h)
		}
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i == k || j == k || (!cube && (i < k || j < k)) {
					continue
				}
				rc.funcD(d+i*h, d+j*h, kd, h)
			}
		}
	}
}

func (rc *rwayRec) funcB(i0, j0, k0, s int) {
	if rc.stop(s) {
		rc.alg.Kernel(rc.x, i0, j0, k0, s)
		return
	}
	r, h := rc.r, s/rc.r
	cube := rc.alg.Shape == Cube
	for k := 0; k < r; k++ {
		for j := 0; j < r; j++ {
			rc.funcB(i0+k*h, j0+j*h, k0+k*h, h)
		}
		for i := 0; i < r; i++ {
			if i == k || (!cube && i < k) {
				continue
			}
			for j := 0; j < r; j++ {
				rc.funcD(i0+i*h, j0+j*h, k0+k*h, h)
			}
		}
	}
}

func (rc *rwayRec) funcC(i0, j0, k0, s int) {
	if rc.stop(s) {
		rc.alg.Kernel(rc.x, i0, j0, k0, s)
		return
	}
	r, h := rc.r, s/rc.r
	cube := rc.alg.Shape == Cube
	for k := 0; k < r; k++ {
		for i := 0; i < r; i++ {
			rc.funcC(i0+i*h, j0+k*h, k0+k*h, h)
		}
		for j := 0; j < r; j++ {
			if j == k || (!cube && j < k) {
				continue
			}
			for i := 0; i < r; i++ {
				rc.funcD(i0+i*h, j0+j*h, k0+k*h, h)
			}
		}
	}
}

func (rc *rwayRec) funcD(i0, j0, k0, s int) {
	if rc.stop(s) {
		rc.alg.Kernel(rc.x, i0, j0, k0, s)
		return
	}
	r, h := rc.r, s/rc.r
	for k := 0; k < r; k++ {
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				rc.funcD(i0+i*h, j0+j*h, k0+k*h, h)
			}
		}
	}
}

// ForkJoinR runs the r-way recursion on the fork-join pool: within each
// phase, the B/C batch and the D batch are parallel stages joined by
// taskwait, mirroring the 2-way driver's structure at arity r.
func (alg Algorithm) ForkJoinR(x *matrix.Dense, base, r int, p *forkjoin.Pool) error {
	if err := validateR(x, base, r); err != nil {
		return err
	}
	rec := rwayFJ{x: x, base: base, r: r, alg: alg}
	p.Run(func(ctx *forkjoin.Ctx) { rec.funcA(ctx, 0, x.Rows()) })
	return nil
}

type rwayFJ struct {
	x    *matrix.Dense
	base int
	r    int
	alg  Algorithm
}

// Spawn trampolines (see fjCallB in gep.go): closure-free spawn bodies for
// the r-way recursion's inner loops, whose spawn count grows as r².
func rwayCallB(c *forkjoin.Ctx, recv any, a [4]int) { recv.(*rwayFJ).funcB(c, a[0], a[1], a[2], a[3]) }
func rwayCallC(c *forkjoin.Ctx, recv any, a [4]int) { recv.(*rwayFJ).funcC(c, a[0], a[1], a[2], a[3]) }
func rwayCallD(c *forkjoin.Ctx, recv any, a [4]int) { recv.(*rwayFJ).funcD(c, a[0], a[1], a[2], a[3]) }

func (rc *rwayFJ) stop(s int) bool { return s <= rc.base || s%rc.r != 0 }

func (rc *rwayFJ) funcA(ctx *forkjoin.Ctx, d, s int) {
	if rc.stop(s) {
		declareRace(ctx, d, d, d, s)
		rc.alg.Kernel(rc.x, d, d, d, s)
		return
	}
	r, h := rc.r, s/rc.r
	cube := rc.alg.Shape == Cube
	var g forkjoin.Group
	for k := 0; k < r; k++ {
		kd := d + k*h
		rc.funcA(ctx, kd, h)
		for x := 0; x < r; x++ {
			if x == k || (!cube && x < k) {
				continue
			}
			xd := d + x*h
			ctx.SpawnCall(&g, rwayCallB, rc, [4]int{kd, xd, kd, h})
			ctx.SpawnCall(&g, rwayCallC, rc, [4]int{xd, kd, kd, h})
		}
		ctx.Wait(&g)
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if i == k || j == k || (!cube && (i < k || j < k)) {
					continue
				}
				id, jd := d+i*h, d+j*h
				ctx.SpawnCall(&g, rwayCallD, rc, [4]int{id, jd, kd, h})
			}
		}
		ctx.Wait(&g)
	}
}

func (rc *rwayFJ) funcB(ctx *forkjoin.Ctx, i0, j0, k0, s int) {
	if rc.stop(s) {
		declareRace(ctx, i0, j0, k0, s)
		rc.alg.Kernel(rc.x, i0, j0, k0, s)
		return
	}
	r, h := rc.r, s/rc.r
	cube := rc.alg.Shape == Cube
	var g forkjoin.Group
	for k := 0; k < r; k++ {
		for j := 0; j < r; j++ {
			ib, jb, kb := i0+k*h, j0+j*h, k0+k*h
			ctx.SpawnCall(&g, rwayCallB, rc, [4]int{ib, jb, kb, h})
		}
		ctx.Wait(&g)
		for i := 0; i < r; i++ {
			if i == k || (!cube && i < k) {
				continue
			}
			for j := 0; j < r; j++ {
				id, jd, kd := i0+i*h, j0+j*h, k0+k*h
				ctx.SpawnCall(&g, rwayCallD, rc, [4]int{id, jd, kd, h})
			}
		}
		ctx.Wait(&g)
	}
}

func (rc *rwayFJ) funcC(ctx *forkjoin.Ctx, i0, j0, k0, s int) {
	if rc.stop(s) {
		declareRace(ctx, i0, j0, k0, s)
		rc.alg.Kernel(rc.x, i0, j0, k0, s)
		return
	}
	r, h := rc.r, s/rc.r
	cube := rc.alg.Shape == Cube
	var g forkjoin.Group
	for k := 0; k < r; k++ {
		for i := 0; i < r; i++ {
			ic, jc, kc := i0+i*h, j0+k*h, k0+k*h
			ctx.SpawnCall(&g, rwayCallC, rc, [4]int{ic, jc, kc, h})
		}
		ctx.Wait(&g)
		for j := 0; j < r; j++ {
			if j == k || (!cube && j < k) {
				continue
			}
			for i := 0; i < r; i++ {
				id, jd, kd := i0+i*h, j0+j*h, k0+k*h
				ctx.SpawnCall(&g, rwayCallD, rc, [4]int{id, jd, kd, h})
			}
		}
		ctx.Wait(&g)
	}
}

func (rc *rwayFJ) funcD(ctx *forkjoin.Ctx, i0, j0, k0, s int) {
	if rc.stop(s) {
		declareRace(ctx, i0, j0, k0, s)
		rc.alg.Kernel(rc.x, i0, j0, k0, s)
		return
	}
	r, h := rc.r, s/rc.r
	var g forkjoin.Group
	for k := 0; k < r; k++ {
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				id, jd, kd := i0+i*h, j0+j*h, k0+k*h
				ctx.SpawnCall(&g, rwayCallD, rc, [4]int{id, jd, kd, h})
			}
		}
		ctx.Wait(&g)
	}
}
