// Package gep implements the 2-way recursive divide-and-conquer structure of
// the Gaussian Elimination Paradigm (Chowdhury & Ramachandran) that the GE
// and FW-APSP benchmarks instantiate — the four mutually recursive functions
// A, B, C, D of the paper's Figure 2.
//
// All functions share the coordinate convention (i0, j0, k0, s): apply
// elimination steps k ∈ [k0, k0+s) to the block rows [i0, i0+s) × columns
// [j0, j0+s). A has i0 == j0 == k0; B has i0 == k0; C has j0 == k0; D is
// disjoint from the step-K rows and columns.
//
// Two update-set shapes are supported:
//
//   - Triangular (GE): only i > k ∧ j > k cells update, so each phase K
//     touches the lower-right sub-grid and the recursion is
//     A(X00); B(X01)∥C(X10); D(X11); A(X11).
//   - Cube (FW): every (i, j) updates at every k, so the second half of
//     each phase also updates the tiles above and left of the diagonal:
//     A(X00); B(X01)∥C(X10); D(X11); A(X11); B(X10)∥C(X01); D(X00).
//
// The package provides every execution of the recursion the paper compares:
// serial, fork-join (Listing 3) on the forkjoin pool, and the CnC data-flow
// program (Listings 4–5) in its Native, Tuner, Manual and non-blocking-get
// variants. The kernel — the base-case tile update — is a parameter, so GE
// (subtract outer product / pivot) and FW (min-plus) reuse the identical
// machinery.
package gep

import (
	"context"
	"fmt"

	"dpflow/internal/core"
	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
	"dpflow/internal/matrix"
)

// Kernel applies a base-case update: elimination steps [k0, k0+b) to block
// rows [i0, i0+b) × cols [j0, j0+b) of x.
type Kernel func(x *matrix.Dense, i0, j0, k0, b int)

// Shape selects the update set of the recursion.
type Shape int

const (
	// Triangular is GE's update set {(i, j, k): i > k, j > k}.
	Triangular Shape = iota
	// Cube is FW's full update set: all (i, j) at every k.
	Cube
)

// String names the shape.
func (s Shape) String() string {
	if s == Triangular {
		return "triangular"
	}
	return "cube"
}

// Algorithm couples a base-case kernel with the update-set shape; it is the
// unit the drivers execute.
type Algorithm struct {
	Kernel Kernel
	Shape  Shape
}

// validate checks the problem geometry shared by all drivers.
func validate(x *matrix.Dense, base int) error {
	n := x.Rows()
	if n != x.Cols() {
		return fmt.Errorf("gep: matrix must be square, got %dx%d", n, x.Cols())
	}
	if !matrix.IsPow2(n) {
		return fmt.Errorf("gep: side %d must be a power of two (pad with matrix.PadPow2)", n)
	}
	if base < 1 {
		return fmt.Errorf("gep: base %d must be >= 1", base)
	}
	return nil
}

// BaseSize returns the block size the recursion bottoms out at: halve n
// until it is <= base. For power-of-two n and any base >= 1 this is the
// uniform side length of every base-case tile.
func BaseSize(n, base int) int {
	s := n
	for s > base {
		s /= 2
	}
	return s
}

// RDPSerial runs the recursion serially: identical operation order to the
// parallel drivers, no runtime. It is the reference the parallel versions
// are tested against.
func (alg Algorithm) RDPSerial(x *matrix.Dense, base int) error {
	if err := validate(x, base); err != nil {
		return err
	}
	r := serialRec{x: x, base: base, alg: alg}
	r.funcA(0, x.Rows())
	return nil
}

type serialRec struct {
	x    *matrix.Dense
	base int
	alg  Algorithm
}

func (r *serialRec) funcA(d, s int) {
	if s <= r.base {
		r.alg.Kernel(r.x, d, d, d, s)
		return
	}
	h := s / 2
	r.funcA(d, h)
	r.funcB(d, d+h, d, h)
	r.funcC(d+h, d, d, h)
	r.funcD(d+h, d+h, d, h)
	r.funcA(d+h, h)
	if r.alg.Shape == Cube {
		r.funcB(d+h, d, d+h, h)
		r.funcC(d, d+h, d+h, h)
		r.funcD(d, d, d+h, h)
	}
}

func (r *serialRec) funcB(i0, j0, k0, s int) {
	if s <= r.base {
		r.alg.Kernel(r.x, i0, j0, k0, s)
		return
	}
	h := s / 2
	r.funcB(i0, j0, k0, h)
	r.funcB(i0, j0+h, k0, h)
	r.funcD(i0+h, j0, k0, h)
	r.funcD(i0+h, j0+h, k0, h)
	r.funcB(i0+h, j0, k0+h, h)
	r.funcB(i0+h, j0+h, k0+h, h)
	if r.alg.Shape == Cube {
		r.funcD(i0, j0, k0+h, h)
		r.funcD(i0, j0+h, k0+h, h)
	}
}

func (r *serialRec) funcC(i0, j0, k0, s int) {
	if s <= r.base {
		r.alg.Kernel(r.x, i0, j0, k0, s)
		return
	}
	h := s / 2
	r.funcC(i0, j0, k0, h)
	r.funcC(i0+h, j0, k0, h)
	r.funcD(i0, j0+h, k0, h)
	r.funcD(i0+h, j0+h, k0, h)
	r.funcC(i0, j0+h, k0+h, h)
	r.funcC(i0+h, j0+h, k0+h, h)
	if r.alg.Shape == Cube {
		r.funcD(i0, j0, k0+h, h)
		r.funcD(i0+h, j0, k0+h, h)
	}
}

func (r *serialRec) funcD(i0, j0, k0, s int) {
	if s <= r.base {
		r.alg.Kernel(r.x, i0, j0, k0, s)
		return
	}
	h := s / 2
	for kk := 0; kk <= h; kk += h {
		r.funcD(i0, j0, k0+kk, h)
		r.funcD(i0, j0+h, k0+kk, h)
		r.funcD(i0+h, j0, k0+kk, h)
		r.funcD(i0+h, j0+h, k0+kk, h)
	}
}

// ForkJoin runs the recursion on the fork-join pool with the task structure
// of the paper's Listing 3: B and C (and the parallel pairs inside B, C and
// D) are spawned tasks joined by a taskwait, which is exactly where the
// artificial dependencies come from.
func (alg Algorithm) ForkJoin(x *matrix.Dense, base int, p *forkjoin.Pool) error {
	return alg.ForkJoinContext(context.Background(), x, base, p)
}

// ForkJoinContext is ForkJoin with cooperative cancellation: when ctx is
// cancelled the pool unwinds the recursion at the next spawn or taskwait
// and the call returns ctx.Err() (see forkjoin.Pool.RunContext).
func (alg Algorithm) ForkJoinContext(ctx context.Context, x *matrix.Dense, base int, p *forkjoin.Pool) error {
	if err := validate(x, base); err != nil {
		return err
	}
	r := fjRec{x: x, base: base, alg: alg}
	return p.RunContext(ctx, func(c *forkjoin.Ctx) { r.funcA(c, 0, x.Rows()) })
}

type fjRec struct {
	x    *matrix.Dense
	base int
	alg  Algorithm
}

// Spawn trampolines: package-level functions invoked through
// forkjoin.SpawnCall with the recursion state as receiver and the tile
// coordinates as plain integers, so the O(n³/b³) interior spawns of the
// recursion allocate no closures (see forkjoin.Ctx.SpawnCall).
func fjCallB(c *forkjoin.Ctx, recv any, a [4]int) { recv.(*fjRec).funcB(c, a[0], a[1], a[2], a[3]) }
func fjCallC(c *forkjoin.Ctx, recv any, a [4]int) { recv.(*fjRec).funcC(c, a[0], a[1], a[2], a[3]) }
func fjCallD(c *forkjoin.Ctx, recv any, a [4]int) { recv.(*fjRec).funcD(c, a[0], a[1], a[2], a[3]) }

// declareRace reports the tile-granularity access set of one base-case
// kernel to the pool's race detector when the run is race-checked: the
// update of tile (i0,j0) at phase k0 reads tiles (i0,k0), (k0,j0) and
// (k0,k0) — the GEP data flow of the paper's Figure 2. Every base tile has
// side s, so block indices are exact cell ids. Without detection the cost
// is the one nil check.
func declareRace(c *forkjoin.Ctx, i0, j0, k0, s int) {
	f := c.Race()
	if f == nil {
		return
	}
	w := determinacy.TileCell(i0/s, j0/s)
	f.Write(w)
	for _, rd := range [...]uint64{
		determinacy.TileCell(i0/s, k0/s),
		determinacy.TileCell(k0/s, j0/s),
		determinacy.TileCell(k0/s, k0/s),
	} {
		if rd != w {
			f.Read(rd)
		}
	}
}

func (r *fjRec) funcA(ctx *forkjoin.Ctx, d, s int) {
	if s <= r.base {
		declareRace(ctx, d, d, d, s)
		r.alg.Kernel(r.x, d, d, d, s)
		return
	}
	h := s / 2
	r.funcA(ctx, d, h)
	var g forkjoin.Group
	ctx.SpawnCall(&g, fjCallB, r, [4]int{d, d + h, d, h})
	ctx.SpawnCall(&g, fjCallC, r, [4]int{d + h, d, d, h})
	ctx.Wait(&g) // artificial dependency: D waits for both B and C subtrees
	r.funcD(ctx, d+h, d+h, d, h)
	r.funcA(ctx, d+h, h)
	if r.alg.Shape == Cube {
		ctx.SpawnCall(&g, fjCallB, r, [4]int{d + h, d, d + h, h})
		ctx.SpawnCall(&g, fjCallC, r, [4]int{d, d + h, d + h, h})
		ctx.Wait(&g)
		r.funcD(ctx, d, d, d+h, h)
	}
}

func (r *fjRec) funcB(ctx *forkjoin.Ctx, i0, j0, k0, s int) {
	if s <= r.base {
		declareRace(ctx, i0, j0, k0, s)
		r.alg.Kernel(r.x, i0, j0, k0, s)
		return
	}
	h := s / 2
	var g forkjoin.Group
	ctx.SpawnCall(&g, fjCallB, r, [4]int{i0, j0, k0, h})
	ctx.SpawnCall(&g, fjCallB, r, [4]int{i0, j0 + h, k0, h})
	ctx.Wait(&g)
	ctx.SpawnCall(&g, fjCallD, r, [4]int{i0 + h, j0, k0, h})
	ctx.SpawnCall(&g, fjCallD, r, [4]int{i0 + h, j0 + h, k0, h})
	ctx.Wait(&g)
	ctx.SpawnCall(&g, fjCallB, r, [4]int{i0 + h, j0, k0 + h, h})
	ctx.SpawnCall(&g, fjCallB, r, [4]int{i0 + h, j0 + h, k0 + h, h})
	ctx.Wait(&g)
	if r.alg.Shape == Cube {
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0, j0, k0 + h, h})
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0, j0 + h, k0 + h, h})
		ctx.Wait(&g)
	}
}

func (r *fjRec) funcC(ctx *forkjoin.Ctx, i0, j0, k0, s int) {
	if s <= r.base {
		declareRace(ctx, i0, j0, k0, s)
		r.alg.Kernel(r.x, i0, j0, k0, s)
		return
	}
	h := s / 2
	var g forkjoin.Group
	ctx.SpawnCall(&g, fjCallC, r, [4]int{i0, j0, k0, h})
	ctx.SpawnCall(&g, fjCallC, r, [4]int{i0 + h, j0, k0, h})
	ctx.Wait(&g)
	ctx.SpawnCall(&g, fjCallD, r, [4]int{i0, j0 + h, k0, h})
	ctx.SpawnCall(&g, fjCallD, r, [4]int{i0 + h, j0 + h, k0, h})
	ctx.Wait(&g)
	ctx.SpawnCall(&g, fjCallC, r, [4]int{i0, j0 + h, k0 + h, h})
	ctx.SpawnCall(&g, fjCallC, r, [4]int{i0 + h, j0 + h, k0 + h, h})
	ctx.Wait(&g)
	if r.alg.Shape == Cube {
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0, j0, k0 + h, h})
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0 + h, j0, k0 + h, h})
		ctx.Wait(&g)
	}
}

func (r *fjRec) funcD(ctx *forkjoin.Ctx, i0, j0, k0, s int) {
	if s <= r.base {
		declareRace(ctx, i0, j0, k0, s)
		r.alg.Kernel(r.x, i0, j0, k0, s)
		return
	}
	h := s / 2
	var g forkjoin.Group
	for kk := 0; kk <= h; kk += h {
		// The taskwait between the two kk rounds is the textbook artificial
		// dependency: D(X00|kk=1) truly depends only on D(X00|kk=0), yet it
		// must wait for all four kk=0 quadrants.
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0, j0, k0 + kk, h})
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0, j0 + h, k0 + kk, h})
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0 + h, j0, k0 + kk, h})
		ctx.SpawnCall(&g, fjCallD, r, [4]int{i0 + h, j0 + h, k0 + kk, h})
		ctx.Wait(&g)
	}
}

// Run executes the requested variant on x. For CnC variants it returns the
// runtime stats; for others the stats are zero. workers is the worker count
// for variants that create their own runtime; fork-join runs on pool (which
// must be non-nil for core.OMPTasking).
func (alg Algorithm) Run(v core.Variant, x *matrix.Dense, base, workers int, pool *forkjoin.Pool) (CnCStats, error) {
	return alg.RunContext(context.Background(), v, x, base, workers, pool)
}

// RunContext is Run with cooperative cancellation for the parallel
// variants; the serial variants run to completion on the calling goroutine
// and ignore ctx.
func (alg Algorithm) RunContext(ctx context.Context, v core.Variant, x *matrix.Dense, base, workers int, pool *forkjoin.Pool) (CnCStats, error) {
	switch v {
	case core.SerialLoop:
		return CnCStats{}, fmt.Errorf("gep: SerialLoop is benchmark-specific; call the benchmark's Serial")
	case core.SerialRDP:
		return CnCStats{}, alg.RDPSerial(x, base)
	case core.OMPTasking:
		if pool == nil {
			return CnCStats{}, fmt.Errorf("gep: OMPTasking requires a fork-join pool")
		}
		return CnCStats{}, alg.ForkJoinContext(ctx, x, base, pool)
	case core.NativeCnC, core.TunerCnC, core.ManualCnC, core.NonBlockingCnC:
		return alg.RunCnCContext(ctx, x, base, workers, v, nil)
	default:
		return CnCStats{}, fmt.Errorf("gep: unsupported variant %v", v)
	}
}
