package gep

import (
	"context"
	"fmt"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/matrix"
)

// Tag identifies a block instance of one of the recursive functions, as in
// the paper's Listing 4: CollectionT = <<I,J>,<K,b>>. I, J, K are block
// coordinates in units of S; the block covers rows [I*S, (I+1)*S), columns
// [J*S, (J+1)*S), elimination steps [K*S, (K+1)*S).
type Tag struct {
	I, J, K int
	S       int
}

// String renders a tag like the paper's <<I,J>,<K,b>> notation.
func (t Tag) String() string {
	return fmt.Sprintf("<<%d,%d>,<%d,%d>>", t.I, t.J, t.K, t.S)
}

// ItemKey identifies a completed base-case update: tile (I, J) finished its
// elimination step K, at base-tile granularity (the paper's
// <<I,J>,<K,b>> -> bool items with b fixed at the base size).
type ItemKey struct {
	I, J, K int
}

// Func identifies one of the four recursive functions.
type Func int

// The four functions of Figure 2.
const (
	FuncA Func = iota
	FuncB
	FuncC
	FuncD
)

// String returns the paper's function name.
func (f Func) String() string { return [...]string{"funcA", "funcB", "funcC", "funcD"}[f] }

// Classify returns which function owns the base task updating tile (i, j)
// at elimination step k: A on the diagonal, B in the pivot row, C in the
// pivot column, D elsewhere.
func Classify(i, j, k int) Func {
	switch {
	case i == k && j == k:
		return FuncA
	case i == k:
		return FuncB
	case j == k:
		return FuncC
	default:
		return FuncD
	}
}

// CnCStats couples the runtime counters with the task census of a CnC run.
type CnCStats struct {
	cnc.Stats
	BaseTasks int // base-case step instances (tile updates) executed
}

// RunCnC executes the data-flow R-DP program on x: four step collections
// (funcA..funcD), four tag collections prescribing them, and four item
// collections used purely for fine-grained synchronisation, as in Listings
// 4 and 5. The variant selects Native (speculative blocking gets), Tuner
// (pre-scheduling tuner), Manual (eager full expansion with pre-declared
// dependencies) or NonBlocking (poll and re-put own tag).
func (alg Algorithm) RunCnC(x *matrix.Dense, base, workers int, variant core.Variant) (CnCStats, error) {
	return alg.RunCnCContext(context.Background(), x, base, workers, variant, nil)
}

// RunCnCContext is RunCnC with cooperative cancellation: a cancelled ctx
// drains the graph and returns ctx.Err() (see cnc.Graph.RunContext). tune,
// when non-nil, is called with the built graph before the run starts — the
// hook the chaos harness uses to install fault-injection hooks and retry
// budgets without this package knowing about either.
func (alg Algorithm) RunCnCContext(ctx context.Context, x *matrix.Dense, base, workers int, variant core.Variant, tune func(*cnc.Graph)) (CnCStats, error) {
	if err := validate(x, base); err != nil {
		return CnCStats{}, err
	}
	n := x.Rows()
	bs := BaseSize(n, base)

	g := cnc.NewGraph("gep-"+variant.String(), workers)
	d := &dataflow{
		g:       g,
		x:       x,
		base:    base,
		bs:      bs,
		tiles:   n / bs,
		variant: variant,
		alg:     alg,
	}
	d.build()
	if tune != nil {
		tune(g)
	}

	err := g.RunContext(ctx, func() {
		if variant == core.ManualCnC {
			d.expandAll()
			return
		}
		d.tags[FuncA].PutThrottled(Tag{0, 0, 0, n})
	})
	stats := CnCStats{Stats: g.Stats()}
	for _, ic := range d.out {
		// Puts, not Len: get-count GC frees receipts as their last reader
		// finishes, so the live count no longer equals the task census.
		stats.BaseTasks += int(ic.Puts())
	}
	return stats, err
}

// NewCnCGraph builds the CnC program's static structure — the four step,
// tag and item collections and their prescribe/produce/consume
// relationships of Listing 4 — without running it, for description and
// visualisation (cmd/cncgraph).
func (alg Algorithm) NewCnCGraph(name string, variant core.Variant) *cnc.Graph {
	g := cnc.NewGraph(name, 1)
	d := &dataflow{g: g, variant: variant, alg: alg, base: 1, bs: 1, tiles: 1}
	d.build()
	return g
}

// dataflow holds the GEContext of Listing 4: the DP table, the problem
// parameters and the collections.
type dataflow struct {
	g       *cnc.Graph
	x       *matrix.Dense
	base    int
	bs      int // base tile side
	tiles   int // tiles per matrix side
	variant core.Variant
	alg     Algorithm

	tags [4]*cnc.TagCollection[Tag]
	out  [4]*cnc.ItemCollection[ItemKey, bool]
}

func (d *dataflow) build() {
	g := d.g
	var steps [4]*cnc.StepCollection[Tag]
	bodies := [4]cnc.StepFunc[Tag]{d.executeA, d.executeB, d.executeC, d.executeD}
	for f := FuncA; f <= FuncD; f++ {
		d.out[f] = cnc.NewItemCollection[ItemKey, bool](g, f.String()+"_outputs")
		d.tags[f] = cnc.NewTagCollection[Tag](g, f.String()+"_tags", false)
		steps[f] = cnc.NewStepCollection(g, f.String(), bodies[f])
	}

	// Declarative graph structure (Listing 4's produces/consumes).
	steps[FuncA].Produces(d.out[FuncA]).Consumes(d.out[FuncD])
	steps[FuncB].Produces(d.out[FuncB]).Consumes(d.out[FuncA]).Consumes(d.out[FuncD])
	steps[FuncC].Produces(d.out[FuncC]).Consumes(d.out[FuncA]).Consumes(d.out[FuncD])
	steps[FuncD].Produces(d.out[FuncD]).Consumes(d.out[FuncA]).
		Consumes(d.out[FuncB]).Consumes(d.out[FuncC]).Consumes(d.out[FuncD])

	switch d.variant {
	case core.TunerCnC:
		for f := FuncA; f <= FuncD; f++ {
			steps[f].WithDeps(cnc.TunedPrescheduled, d.depsFor(f))
		}
	case core.ManualCnC:
		for f := FuncA; f <= FuncD; f++ {
			steps[f].WithDeps(cnc.TunedTriggered, d.depsFor(f))
		}
	}

	// Memory contract: every output item's consumer count is known in closed
	// form (getCounts), each item stands for one bs×bs tile of float64s, and
	// each base tag admitted under a memory limit will materialise exactly
	// one such tile. depsFor doubles as the released read set — it names
	// exactly what the base step's blocking gets (or declared deps) fetch.
	// The non-blocking variant is excluded: its poll-miss path retires a
	// successful instance per re-put, which would release the read set once
	// per poll instead of once per tile.
	if d.variant != core.NonBlockingCnC {
		tile := d.bs * d.bs * 8
		for f := FuncA; f <= FuncD; f++ {
			d.out[f].WithGetCount(d.getCounts(f)).WithSizeOf(func(ItemKey) int { return tile })
			steps[f].WithGets(d.depsFor(f))
			d.tags[f].WithTagBytes(func(t Tag) int {
				if t.S > d.base {
					return 0 // recursive tags expand control flow, no data
				}
				return tile
			})
		}
	}

	for f := FuncA; f <= FuncD; f++ {
		d.tags[f].Prescribe(steps[f])
	}
}

// getCounts returns the closed-form consumer count of one function's output
// items — how many base tasks read tile receipt (I,J,K) before it can be
// freed. Derived from depsFor over the full tag space (T = tiles per side):
//
// Triangular (GE — phase K touches only tiles with i,j ≥ K; pivot tiles are
// final after their own phase, so there are no anti-dependency readers):
//
//   - A(K,K,K): every other phase-K task reads it → (T−K)²−1
//   - B(K,J,K): column of D tasks D(i,J,K), i>K → T−K−1
//   - C(I,K,K): row of D tasks D(I,j,K), j>K → T−K−1
//   - D(I,J,K): only the same tile's next elimination step (I,J,K+1) → 1
//
// Cube (FW — every phase touches all T² tiles, and phase K+1 writers must
// additionally wait for phase-K readers of the tile they overwrite, the
// antiDeps WAR hazard; b = 1 while a next phase exists, else 0):
//
//   - A(K,K,K): T²−1 same-phase readers + the next writer of the tile → T²−1+b
//   - B(K,J,K): T−1 same-phase D readers + next writer + one anti-dep
//     reader (the phase-K+1 diagonal task scans all B receipts) → T−1+2b
//   - C(I,K,K): symmetric to B → T−1+2b
//   - D(I,J,K): next writer + the two anti-dep readers overwriting the old
//     pivot row and column → 3b
func (d *dataflow) getCounts(f Func) func(ItemKey) int {
	t := d.tiles
	if d.alg.Shape == Cube {
		return func(k ItemKey) int {
			b := 0
			if k.K+1 < t {
				b = 1
			}
			switch f {
			case FuncA:
				return t*t - 1 + b
			case FuncB, FuncC:
				return t - 1 + 2*b
			default:
				return 3 * b
			}
		}
	}
	return func(k ItemKey) int {
		r := t - k.K // tiles per side still active at phase K
		switch f {
		case FuncA:
			return r*r - 1
		case FuncB, FuncC:
			return r - 1
		default:
			return 1 // the consumer (I,J,K+1) always exists: I,J > K
		}
	}
}

// expandAll instantiates every base-case task directly — the paper's
// "manually pre-scheduled" program: all dependencies are declared before any
// update executes, so the scheduler triggers tasks as items become
// available. The cost is instantiating the whole task graph up front.
func (d *dataflow) expandAll() {
	t := d.tiles
	for k := 0; k < t; k++ {
		lo := 0
		if d.alg.Shape == Triangular {
			lo = k // tiles with i < k or j < k are no-ops under Σ_GE
		}
		// One burst per elimination phase: the k-th phase's t² tags reach
		// the queue in a single batched push and wakeup pass instead of t²
		// individual ones. Throttled: under a memory limit the environment's
		// sprint pauses whenever its admitted tiles would overrun the
		// budget, resuming as earlier phases retire (deferred tags bypass
		// the burst — their admission time is not under our control).
		bu := d.g.NewBurst()
		for i := lo; i < t; i++ {
			for j := lo; j < t; j++ {
				f := Classify(i, j, k)
				d.tags[f].PutThrottledInto(Tag{i, j, k, d.bs}, bu)
			}
		}
		bu.Flush()
	}
}

// depsFor returns the pre-declared dependency function of one step
// collection for the tuned variants. Recursive (non-base) tags have no
// dependencies; base tags declare exactly what their blocking Gets would
// fetch.
func (d *dataflow) depsFor(f Func) func(Tag) []cnc.Dep {
	return func(t Tag) []cnc.Dep {
		if t.S > d.base {
			return nil
		}
		var deps []cnc.Dep
		if f == FuncB || f == FuncC || f == FuncD {
			deps = append(deps, d.out[FuncA].Key(ItemKey{t.K, t.K, t.K}))
		}
		if f == FuncD {
			deps = append(deps,
				d.out[FuncB].Key(ItemKey{t.K, t.J, t.K}),
				d.out[FuncC].Key(ItemKey{t.I, t.K, t.K}))
		}
		if t.K > 0 {
			prev := Classify(t.I, t.J, t.K-1)
			deps = append(deps, d.out[prev].Key(ItemKey{t.I, t.J, t.K - 1}))
		}
		d.antiDeps(t, func(fn Func, k ItemKey) bool {
			deps = append(deps, d.out[fn].Key(k))
			return true
		})
		return deps
	}
}

// await enforces one read-write or write-write dependency according to the
// variant's synchronisation style. It returns false when the dependency is
// unsatisfied and the step must retry (non-blocking variant only).
func (d *dataflow) await(f Func, key ItemKey) bool {
	if d.variant == core.NonBlockingCnC {
		_, ok := d.out[f].TryGet(key)
		return ok
	}
	d.out[f].Get(key) // blocking get: aborts and requeues the step when missing
	return true
}

// awaitPrev enforces the write-write dependency on the previous elimination
// step of the same tile.
func (d *dataflow) awaitPrev(t Tag) bool {
	if t.K == 0 {
		return true
	}
	return d.await(Classify(t.I, t.J, t.K-1), ItemKey{t.I, t.J, t.K - 1})
}

// antiDeps enumerates the write-after-read dependencies a base task must
// honour under the Cube shape. GE never needs these: its pivot row/column
// tiles are final after their own phase. FW keeps updating every tile, so
// a task overwriting a tile that served as pivot row/column/diagonal in
// phase K−1 must wait until every phase-K−1 reader of that tile has
// finished — a hazard the flag-based dependency scheme of the paper's
// Listing 5 does not cover (it surfaces as a data race the moment two
// workers run FW concurrently; caught by this repository's race tests).
// The readers' own output items serve as the receipts.
func (d *dataflow) antiDeps(t Tag, f func(Func, ItemKey) bool) bool {
	if d.alg.Shape != Cube || t.K == 0 {
		return true
	}
	p := t.K - 1
	switch {
	case t.I == p && t.J == p:
		// The old diagonal tile was read by every B and C of phase p.
		for x := 0; x < d.tiles; x++ {
			if x == p {
				continue
			}
			if !f(FuncB, ItemKey{p, x, p}) || !f(FuncC, ItemKey{x, p, p}) {
				return false
			}
		}
	case t.I == p:
		// The old pivot-row tile (p, J) was read by D(x, J, p) for x != p.
		for x := 0; x < d.tiles; x++ {
			if x == p {
				continue
			}
			if !f(FuncD, ItemKey{x, t.J, p}) {
				return false
			}
		}
	case t.J == p:
		// The old pivot-column tile (I, p) was read by D(I, x, p), x != p.
		for x := 0; x < d.tiles; x++ {
			if x == p {
				continue
			}
			if !f(FuncD, ItemKey{t.I, x, p}) {
				return false
			}
		}
	}
	return true
}

// awaitAnti blocks on the anti-dependencies (variant-appropriately).
func (d *dataflow) awaitAnti(t Tag) bool {
	return d.antiDeps(t, func(fn Func, k ItemKey) bool { return d.await(fn, k) })
}

// finish runs the kernel for a base tag and publishes its output item.
func (d *dataflow) finish(f Func, t Tag) {
	d.alg.Kernel(d.x, t.I*t.S, t.J*t.S, t.K*t.S, t.S)
	d.out[f].Put(ItemKey{t.I, t.J, t.K}, true)
}

func (d *dataflow) executeA(t Tag) error {
	if t.S > d.base {
		h := t.S / 2
		i := 2 * t.I
		bu := d.g.NewBurst()
		d.tags[FuncA].PutThrottledInto(Tag{i, i, i, h}, bu)
		d.tags[FuncB].PutThrottledInto(Tag{i, i + 1, i, h}, bu)
		d.tags[FuncC].PutThrottledInto(Tag{i + 1, i, i, h}, bu)
		d.tags[FuncD].PutThrottledInto(Tag{i + 1, i + 1, i, h}, bu)
		d.tags[FuncA].PutThrottledInto(Tag{i + 1, i + 1, i + 1, h}, bu)
		if d.alg.Shape == Cube {
			d.tags[FuncB].PutThrottledInto(Tag{i + 1, i, i + 1, h}, bu)
			d.tags[FuncC].PutThrottledInto(Tag{i, i + 1, i + 1, h}, bu)
			d.tags[FuncD].PutThrottledInto(Tag{i, i, i + 1, h}, bu)
		}
		bu.Flush()
		return nil
	}
	if !d.awaitPrev(t) || !d.awaitAnti(t) {
		d.tags[FuncA].Put(t)
		return nil
	}
	d.finish(FuncA, t)
	return nil
}

func (d *dataflow) executeB(t Tag) error {
	if t.S > d.base {
		h := t.S / 2
		i, j, k := 2*t.I, 2*t.J, 2*t.K
		bu := d.g.NewBurst()
		d.tags[FuncB].PutThrottledInto(Tag{i, j, k, h}, bu)
		d.tags[FuncB].PutThrottledInto(Tag{i, j + 1, k, h}, bu)
		d.tags[FuncD].PutThrottledInto(Tag{i + 1, j, k, h}, bu)
		d.tags[FuncD].PutThrottledInto(Tag{i + 1, j + 1, k, h}, bu)
		d.tags[FuncB].PutThrottledInto(Tag{i + 1, j, k + 1, h}, bu)
		d.tags[FuncB].PutThrottledInto(Tag{i + 1, j + 1, k + 1, h}, bu)
		if d.alg.Shape == Cube {
			d.tags[FuncD].PutThrottledInto(Tag{i, j, k + 1, h}, bu)
			d.tags[FuncD].PutThrottledInto(Tag{i, j + 1, k + 1, h}, bu)
		}
		bu.Flush()
		return nil
	}
	if !d.await(FuncA, ItemKey{t.K, t.K, t.K}) || !d.awaitPrev(t) || !d.awaitAnti(t) {
		d.tags[FuncB].Put(t)
		return nil
	}
	d.finish(FuncB, t)
	return nil
}

func (d *dataflow) executeC(t Tag) error {
	if t.S > d.base {
		h := t.S / 2
		i, j, k := 2*t.I, 2*t.J, 2*t.K
		bu := d.g.NewBurst()
		d.tags[FuncC].PutThrottledInto(Tag{i, j, k, h}, bu)
		d.tags[FuncC].PutThrottledInto(Tag{i + 1, j, k, h}, bu)
		d.tags[FuncD].PutThrottledInto(Tag{i, j + 1, k, h}, bu)
		d.tags[FuncD].PutThrottledInto(Tag{i + 1, j + 1, k, h}, bu)
		d.tags[FuncC].PutThrottledInto(Tag{i, j + 1, k + 1, h}, bu)
		d.tags[FuncC].PutThrottledInto(Tag{i + 1, j + 1, k + 1, h}, bu)
		if d.alg.Shape == Cube {
			d.tags[FuncD].PutThrottledInto(Tag{i, j, k + 1, h}, bu)
			d.tags[FuncD].PutThrottledInto(Tag{i + 1, j, k + 1, h}, bu)
		}
		bu.Flush()
		return nil
	}
	if !d.await(FuncA, ItemKey{t.K, t.K, t.K}) || !d.awaitPrev(t) || !d.awaitAnti(t) {
		d.tags[FuncC].Put(t)
		return nil
	}
	d.finish(FuncC, t)
	return nil
}

// executeD is the paper's Listing 5, in structure: the write-write
// dependency on the previous elimination step of the same tile, the three
// read-write dependencies on the A, B and C outputs, then the kernel and
// the output put; the recursive part puts the eight child tags.
func (d *dataflow) executeD(t Tag) error {
	if t.S > d.base {
		h := t.S / 2
		bu := d.g.NewBurst()
		for kk := 0; kk < 2; kk++ {
			for ii := 0; ii < 2; ii++ {
				for jj := 0; jj < 2; jj++ {
					d.tags[FuncD].PutThrottledInto(Tag{2*t.I + ii, 2*t.J + jj, 2*t.K + kk, h}, bu)
				}
			}
		}
		bu.Flush()
		return nil
	}
	ok := d.awaitPrev(t) &&
		d.await(FuncA, ItemKey{t.K, t.K, t.K}) &&
		d.await(FuncB, ItemKey{t.K, t.J, t.K}) &&
		d.await(FuncC, ItemKey{t.I, t.K, t.K}) &&
		d.awaitAnti(t)
	if !ok {
		d.tags[FuncD].Put(t)
		return nil
	}
	d.finish(FuncD, t)
	return nil
}

// TaskCount returns the number of base-case tasks of each function for a
// tiles×tiles grid under the given shape — the recursive algorithm's task
// census, also used by the analytical model.
func TaskCount(tiles int, shape Shape) (a, b, c, dd int) {
	a = tiles
	if shape == Cube {
		b = tiles * (tiles - 1)
		c = tiles * (tiles - 1)
		dd = tiles * (tiles - 1) * (tiles - 1)
		return a, b, c, dd
	}
	for k := 0; k < tiles; k++ {
		b += tiles - 1 - k
		c += tiles - 1 - k
		dd += (tiles - 1 - k) * (tiles - 1 - k)
	}
	return a, b, c, dd
}
