package gep

import (
	"strings"
	"testing"

	"dpflow/internal/determinacy"
	"dpflow/internal/forkjoin"
	"dpflow/internal/kernels"
	"dpflow/internal/matrix"
)

// TestForkJoinRaceCheckedClean runs the real 2-way and r-way fork-join
// drivers under determinacy detection: the taskwait schedule must be
// race-free at tile granularity, the detector must have actually tracked
// the kernels' declared accesses, and the result must still verify.
func TestForkJoinRaceCheckedClean(t *testing.T) {
	const n, base = 32, 8
	for _, tc := range []struct {
		name string
		alg  Algorithm
		run  func(x *matrix.Dense, p *forkjoin.Pool) error
	}{
		{"GE/2way", Algorithm{Kernel: kernels.GE, Shape: Triangular},
			func(x *matrix.Dense, p *forkjoin.Pool) error {
				return Algorithm{Kernel: kernels.GE, Shape: Triangular}.ForkJoin(x, base, p)
			}},
		{"FW/2way", Algorithm{Kernel: kernels.FW, Shape: Cube},
			func(x *matrix.Dense, p *forkjoin.Pool) error {
				return Algorithm{Kernel: kernels.FW, Shape: Cube}.ForkJoin(x, base, p)
			}},
		{"GE/4way", Algorithm{Kernel: kernels.GE, Shape: Triangular},
			func(x *matrix.Dense, p *forkjoin.Pool) error {
				return Algorithm{Kernel: kernels.GE, Shape: Triangular}.ForkJoinR(x, base, 4, p)
			}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x := geInput(n, 42)
			ref := x.Clone()
			if err := tc.alg.RDPSerial(ref, base); err != nil {
				t.Fatal(err)
			}
			p := forkjoin.NewPool(forkjoin.Config{Workers: 4, Seed: 7})
			defer p.Close()
			d := determinacy.NewDetector()
			p.WithRaceDetection(d)
			if err := tc.run(x, p); err != nil {
				t.Fatal(err)
			}
			if err := d.Err(); err != nil {
				t.Fatalf("race reported on the correct schedule: %v", err)
			}
			if st := d.Stats(); st.Accesses == 0 {
				t.Fatal("detector saw no accesses; base cases not declaring")
			}
			if !matrix.Equal(x, ref) {
				t.Fatalf("detection changed the result (maxdiff %g)", matrix.MaxAbsDiff(x, ref))
			}
		})
	}
}

// brokenA is fjRec.funcA's top level with the taskwait between the B/C
// batch and funcD removed: funcD consumes the very tiles B and C are still
// producing — exactly the artificial dependency the paper's fork-join model
// inserts, turned into the canonical missing-join bug. The kernels are
// no-ops so the seeded race exists only at the declared-shadow level (the
// suite runs under -race; a real memory race would fail the run before the
// detector could report it).
func brokenA(r *fjRec, ctx *forkjoin.Ctx, d, s int) {
	h := s / 2
	r.funcA(ctx, d, h)
	var g forkjoin.Group
	ctx.Spawn(&g, func(c *forkjoin.Ctx) { r.funcB(c, d, d+h, d, h) })
	ctx.Spawn(&g, func(c *forkjoin.Ctx) { r.funcC(c, d+h, d, d, h) })
	// BUG under test: no ctx.Wait(&g) here.
	r.funcD(ctx, d+h, d+h, d, h)
	ctx.Wait(&g)
	r.funcA(ctx, d+h, h)
}

// TestForkJoinSeededRaceDetected proves the detector fires: the broken
// schedule must produce a deterministic RaceError naming two distinct tasks
// by fork path, on every seed tried. With n = 2·base the broken level is
// all base cases, so the seeded bug is exactly two unordered pairs — B's
// write of tile(0,1) vs D's read, and C's write of tile(1,0) vs D's read —
// and both must be found under every interleaving.
func TestForkJoinSeededRaceDetected(t *testing.T) {
	const n, base = 16, 8
	noop := Algorithm{Kernel: func(*matrix.Dense, int, int, int, int) {}, Shape: Triangular}
	var first string
	for seed := int64(0); seed < 10; seed++ {
		p := forkjoin.NewPool(forkjoin.Config{Workers: 4, Seed: seed})
		d := determinacy.NewDetector()
		p.WithRaceDetection(d)
		r := fjRec{x: matrix.NewSquare(n), base: base, alg: noop}
		p.Run(func(c *forkjoin.Ctx) { brokenA(&r, c, 0, n) })
		p.Close()

		err := d.Err()
		if err == nil {
			t.Fatalf("seed %d: missing-join schedule not reported", seed)
		}
		if races := d.Races(); len(races) != 2 {
			t.Fatalf("seed %d: got %d races, want the 2 seeded pairs: %v", seed, len(races), races)
		}
		re, ok := err.(*determinacy.RaceError)
		if !ok {
			t.Fatalf("seed %d: Err() = %T, want *RaceError", seed, err)
		}
		if re.FirstTask == re.SecondTask {
			t.Fatalf("seed %d: race names one task twice: %v", seed, re)
		}
		if !strings.HasPrefix(re.FirstTask, "root") || !strings.HasPrefix(re.SecondTask, "root") {
			t.Fatalf("seed %d: tasks not named by fork path: %v", seed, re)
		}
		if !strings.HasPrefix(re.Cell, "tile(") {
			t.Fatalf("seed %d: cell not named: %v", seed, re)
		}
		// The schedule varies per seed; the report must not.
		if seed == 0 {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("seed %d reported %q, seed 0 reported %q", seed, err.Error(), first)
		}
	}
}

// BenchmarkForkJoinGE1K measures detection cost on the acceptance workload:
// GE at n=1024, base=64, 8 workers. detect=off is the production path (no
// detector installed — must stay at the undetected baseline); detect=on runs
// the identical schedule race-checked and is the overhead being reported
// (target: no more than 3x wall-clock).
func BenchmarkForkJoinGE1K(b *testing.B) {
	const n, base = 1024, 64
	alg := Algorithm{Kernel: kernels.GE, Shape: Triangular}
	for _, detect := range []bool{false, true} {
		name := "detect=off"
		if detect {
			name = "detect=on"
		}
		b.Run(name, func(b *testing.B) {
			p := forkjoin.NewPool(forkjoin.Config{Workers: 8, Seed: 7})
			defer p.Close()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x := geInput(n, 42)
				if detect {
					p.WithRaceDetection(determinacy.NewDetector())
				}
				b.StartTimer()
				if err := alg.ForkJoin(x, base, p); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if detect {
					if err := p.RaceDetector().Err(); err != nil {
						b.Fatal(err)
					}
					p.WithRaceDetection(nil)
				}
				b.StartTimer()
			}
		})
	}
}
