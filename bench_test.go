// Benchmarks regenerating every table and figure of the paper's evaluation
// plus real-execution and ablation measurements.
//
//   - BenchmarkFig4..BenchmarkFig9 run the corresponding figure experiment
//     through the DAG + cost-model + discrete-event-scheduler pipeline. By
//     default they run at 1/4 linear scale for benchmarking hygiene; the
//     full paper-scale sweeps are produced by `go run ./cmd/dpbench -exp
//     figN` (and by these benches with -dpflow.fullscale).
//   - BenchmarkTable1 regenerates Table I with the cache simulator.
//   - BenchmarkReal* execute the actual runtimes (goroutines) on the host.
//   - BenchmarkAblation* measure the design alternatives called out in
//     DESIGN.md (non-blocking gets, steal policy, tag memoization).
package dpflow_test

import (
	"context"
	"flag"
	"math/rand"
	"testing"

	"dpflow/internal/cnc"
	"dpflow/internal/core"
	"dpflow/internal/forkjoin"
	"dpflow/internal/fw"
	"dpflow/internal/ge"
	"dpflow/internal/graphgen"
	"dpflow/internal/harness"
	"dpflow/internal/kernels"
	"dpflow/internal/machine"
	"dpflow/internal/matrix"
	"dpflow/internal/par"
	"dpflow/internal/seq"
	"dpflow/internal/sw"
)

var fullScale = flag.Bool("dpflow.fullscale", false, "run figure benchmarks at the paper's full problem sizes")

func figureOptions() harness.Options {
	if *fullScale {
		return harness.Options{MaxTiles: 256}
	}
	return harness.Options{Scale: 2, MaxTiles: 128}
}

func benchFigure(b *testing.B, id string) {
	exp, ok := harness.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	opts := figureOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Panels) == 0 {
			b.Fatal("no panels")
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: GE execution times on EPYC-64.
func BenchmarkFig4(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5: GE execution times on SKYLAKE-192.
func BenchmarkFig5(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: SW execution times on EPYC-64.
func BenchmarkFig6(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: SW execution times on SKYLAKE-192.
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: FW-APSP execution times on EPYC-64.
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: FW-APSP execution times on SKYLAKE-192.
func BenchmarkFig9(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkTable1 regenerates Table I (estimated/actual cache-miss ratios)
// at 1/32 geometry; cmd/cachetable produces larger scales.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(32)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- real executions of the actual runtimes ---

func realSizes(b *testing.B) (n, base, workers int) {
	if testing.Short() {
		return 128, 16, 4
	}
	return 512, 64, 4
}

// BenchmarkRealGE executes GE on the host with every parallel variant.
func BenchmarkRealGE(b *testing.B) {
	n, base, workers := realSizes(b)
	rng := rand.New(rand.NewSource(1))
	orig := matrix.NewSquare(n)
	orig.FillDiagonallyDominant(rng)
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()
	for _, v := range core.ParallelVariants {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x := orig.Clone()
				b.StartTimer()
				if _, err := ge.Run(v, x, base, workers, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealSW executes SW on the host with every parallel variant.
func BenchmarkRealSW(b *testing.B) {
	n, base, workers := realSizes(b)
	rng := rand.New(rand.NewSource(2))
	a := seq.RandomDNA(n, rng)
	p := &sw.Problem{A: a, B: seq.Mutate(a, 0.2, seq.DNAAlphabet, rng), Scoring: kernels.DefaultScoring}
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()
	for _, v := range core.ParallelVariants {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(v, base, workers, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealFW executes FW on the host with every parallel variant.
func BenchmarkRealFW(b *testing.B) {
	n, base, workers := realSizes(b)
	rng := rand.New(rand.NewSource(3))
	orig := graphgen.Random(graphgen.Config{N: n, Density: 0.2, MaxWeight: 9, Infinity: fw.Infinity}, rng)
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()
	for _, v := range core.ParallelVariants {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x := orig.Clone()
				b.StartTimer()
				if _, err := fw.Run(v, x, base, workers, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablations ---

// BenchmarkAblationNonBlockingGet compares the blocking-get CnC program
// with the non-blocking (poll and re-put) variant the paper found
// profitable only for small block sizes.
func BenchmarkAblationNonBlockingGet(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	orig := matrix.NewSquare(256)
	orig.FillDiagonallyDominant(rng)
	for _, base := range []int{8, 64} {
		for _, v := range []core.Variant{core.NativeCnC, core.NonBlockingCnC} {
			b.Run(v.String()+"/base="+itoa(base), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					x := orig.Clone()
					b.StartTimer()
					if _, err := ge.RunCnC(x, base, 4, v); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGE1KNativeCnC is the scheduler acceptance benchmark: GE at
// n=1024 under the Native CnC schedule, reporting the dispatch-layer
// counters alongside wall-clock. The wakeups/puts metric is the targeted
// sleep/wake protocol's bill; the seed's Broadcast-per-push regime implied
// workers wakes per put (8 here), so the metric sitting far below 8 is the
// bounded-contention claim in one number.
func BenchmarkGE1KNativeCnC(b *testing.B) {
	n, base, workers := 1024, 64, 8
	if testing.Short() {
		n = 256
	}
	rng := rand.New(rand.NewSource(6))
	orig := matrix.NewSquare(n)
	orig.FillDiagonallyDominant(rng)
	var wakeups, puts, steals uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x := orig.Clone()
		b.StartTimer()
		stats, err := ge.RunCnC(x, base, workers, core.NativeCnC)
		if err != nil {
			b.Fatal(err)
		}
		wakeups += stats.Wakeups
		puts += stats.TagsPut + stats.ItemsPut
		steals += stats.Steals
	}
	b.ReportMetric(float64(wakeups)/float64(puts), "wakeups/put")
	b.ReportMetric(float64(steals)/float64(b.N), "steals/run")
}

// BenchmarkCnCStealPolicy compares random and sequential victim selection
// in the CnC graph runtime (the knob BenchmarkAblationStealPolicy sweeps
// for the fork-join pool).
func BenchmarkCnCStealPolicy(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	orig := matrix.NewSquare(256)
	orig.FillDiagonallyDominant(rng)
	for _, pol := range []cnc.StealPolicy{cnc.StealRandom, cnc.StealSequential} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x := orig.Clone()
				b.StartTimer()
				_, err := ge.RunCnCContext(context.Background(), x, 32, 4, core.NativeCnC,
					func(g *cnc.Graph) { g.SetStealPolicy(pol) })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStealPolicy compares random and sequential victim
// selection in the fork-join pool.
func BenchmarkAblationStealPolicy(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	orig := matrix.NewSquare(256)
	orig.FillDiagonallyDominant(rng)
	for _, pol := range []forkjoin.StealPolicy{forkjoin.StealRandom, forkjoin.StealSequential} {
		name := "random"
		if pol == forkjoin.StealSequential {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			pool := forkjoin.NewPool(forkjoin.Config{Workers: 4, Policy: pol})
			defer pool.Close()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x := orig.Clone()
				b.StartTimer()
				if err := ge.ForkJoin(x, 32, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBaseSize sweeps the base size of a real CnC GE run —
// the U-shaped curve of the figures, measured rather than simulated.
func BenchmarkAblationBaseSize(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	orig := matrix.NewSquare(512)
	orig.FillDiagonallyDominant(rng)
	for _, base := range []int{8, 16, 32, 64, 128, 256} {
		b.Run("base="+itoa(base), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				x := orig.Clone()
				b.StartTimer()
				if _, err := ge.RunCnC(x, base, 4, core.TunerCnC); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernels measures the raw base-case kernels (the cost model's
// compute term).
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := matrix.NewSquare(256)
	x.FillDiagonallyDominant(rng)
	b.Run("GE/m=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.GE(x, 64, 64, 0, 64)
		}
	})
	b.Run("FW/m=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.FW(x, 64, 64, 0, 64)
		}
	})
	a := seq.RandomDNA(256, rng)
	h := matrix.New(257, 257)
	b.Run("SW/m=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.SW(h, a, a, kernels.DefaultScoring, 65, 65, 64)
		}
	})
}

// BenchmarkSimulatorThroughput measures the discrete-event scheduler on a
// mid-sized graph (events per second drive full-figure regeneration time).
func BenchmarkSimulatorThroughput(b *testing.B) {
	mach := benchMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.SimulatePoint(mach, core.GE, 4096, 64, core.NativeCnC); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMachine() *machine.Machine { return machine.EPYC64() }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkRealPar executes the parenthesis problem (matrix chain) on the
// host with every parallel variant — the high-fan-in dependency stress for
// the CnC tuners.
func BenchmarkRealPar(b *testing.B) {
	n, base, workers := realSizes(b)
	rng := rand.New(rand.NewSource(8))
	p := par.RandomProblem(n/2, 30, rng)
	pool := forkjoin.NewPool(forkjoin.Config{Workers: workers})
	defer pool.Close()
	for _, v := range core.ParallelVariants {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(v, base/2, workers, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
